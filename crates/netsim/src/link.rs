//! Simplex point-to-point links with serialisation delay, propagation
//! delay, and a drop-tail queue.

use crate::fault::FaultInjector;
use crate::red::RedQueue;
use crate::time::{SimDuration, SimTime};
use turb_obs::SymbolId;

/// Identifier of a link within a [`crate::sim::Simulation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub usize);

/// Identifier of a node within a [`crate::sim::Simulation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// Static configuration of a link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkConfig {
    /// Transmission rate in bits per second.
    pub rate_bps: u64,
    /// Propagation delay.
    pub propagation: SimDuration,
    /// Drop-tail transmit queue capacity in bytes. Packets arriving
    /// when the backlog would exceed this are discarded.
    pub queue_capacity: usize,
    /// Link MTU in bytes of IP packet; larger packets are fragmented by
    /// the transmitting node.
    pub mtu: usize,
}

impl LinkConfig {
    /// A 10 Mbit/s Ethernet access link, like the paper's client NIC
    /// ("PCI 10M base Network Interface Card").
    pub fn ethernet_10m(propagation: SimDuration) -> Self {
        LinkConfig {
            rate_bps: 10_000_000,
            propagation,
            queue_capacity: 64 * 1024,
            mtu: turb_wire::DEFAULT_MTU,
        }
    }

    /// A 45 Mbit/s T3 backbone hop.
    pub fn t3(propagation: SimDuration) -> Self {
        LinkConfig {
            rate_bps: 45_000_000,
            propagation,
            queue_capacity: 256 * 1024,
            mtu: turb_wire::DEFAULT_MTU,
        }
    }

    /// A 1.5 Mbit/s T1 tail circuit — a plausible 2002 server uplink
    /// and the kind of bottleneck §3.F invokes for the 637 Kbit/s clip.
    pub fn t1(propagation: SimDuration) -> Self {
        LinkConfig {
            rate_bps: 1_544_000,
            propagation,
            queue_capacity: 32 * 1024,
            mtu: turb_wire::DEFAULT_MTU,
        }
    }

    /// Serialisation time for a packet of `bytes`.
    pub fn tx_time(&self, bytes: usize) -> SimDuration {
        SimDuration::transmission(bytes, self.rate_bps)
    }
}

/// Counters kept per link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Packets accepted for transmission.
    pub tx_packets: u64,
    /// Bytes accepted for transmission (IP bytes).
    pub tx_bytes: u64,
    /// Packets dropped because the transmit queue was full.
    pub dropped_queue: u64,
    /// Packets dropped early by RED.
    pub dropped_red: u64,
    /// Packets dropped by the fault injector.
    pub dropped_fault: u64,
    /// High-water mark of the transmit queue, in bytes (backlog plus
    /// the packet being admitted). Deterministic sim state like every
    /// other counter here — a link's transmits happen in one shard
    /// domain in event order — so it is safe inside the identity set.
    pub peak_backlog_bytes: u64,
}

/// A simplex link. Duplex connectivity is modelled as a pair of links.
#[derive(Debug)]
pub struct Link {
    /// This link's id.
    pub id: LinkId,
    /// Transmitting node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// Static parameters.
    pub config: LinkConfig,
    /// Fault injector applied to every packet.
    pub fault: FaultInjector,
    /// Optional RED active queue management; `None` = plain drop-tail.
    pub red: Option<RedQueue>,
    /// Instant at which the transmitter becomes free.
    next_free: SimTime,
    /// Bandwidth currently occupied by fluid background flows, in bits
    /// per second. Zero unless a hybrid run's solver assigned this
    /// link a share (see [`crate::fluid`]); updated only by
    /// `FluidUpdate` events.
    pub(crate) fluid_bps: u64,
    /// Counters.
    pub stats: LinkStats,
    /// `"link:<id>"`, precomputed once so hot-path tracing and metric
    /// harvesting never rebuild it per event.
    pub trace_component: String,
    /// [`trace_component`](Link::trace_component) interned in the
    /// run's shared symbol table. Assigned by
    /// [`crate::sim::Simulation::add_link`]; hot-path observers record
    /// this handle instead of cloning the string.
    pub comp: SymbolId,
    /// This link's private random stream, consumed by the fault
    /// injector and RED. Forked per link at construction so the draw
    /// sequence is a function of this link's traffic alone — which is
    /// what keeps faulty runs byte-identical when the topology is
    /// partitioned across shard domains.
    pub rng: crate::rng::SimRng,
}

/// Outcome of offering a packet to a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxOutcome {
    /// The packet will arrive at the far end at the given instant.
    Deliver {
        /// Arrival instant (end of serialisation + propagation + jitter).
        arrival: SimTime,
    },
    /// Dropped: transmit queue full.
    QueueFull,
    /// Dropped: RED early drop (queue had room; AQM chose to shed).
    Red,
    /// Dropped: fault injector.
    Faulted,
}

impl Link {
    /// Create a link; normally done through
    /// [`crate::sim::Simulation::add_link`].
    pub fn new(id: LinkId, from: NodeId, to: NodeId, config: LinkConfig) -> Self {
        Link {
            id,
            from,
            to,
            config,
            fault: FaultInjector::none(),
            red: None,
            next_free: SimTime::ZERO,
            fluid_bps: 0,
            stats: LinkStats::default(),
            trace_component: format!("link:{}", id.0),
            comp: SymbolId(0),
            rng: crate::rng::SimRng::new(0x11A8_0000 ^ id.0 as u64),
        }
    }

    /// The capacity the packet path may use: configured rate minus the
    /// fluid engine's share, floored at 1% of the configured rate (a
    /// fully fluid-saturated link still trickles packets instead of
    /// dividing by zero — the residual floor is documented in DESIGN
    /// §5). Exactly `config.rate_bps` when no fluid occupies the link,
    /// so packet-engine arithmetic is untouched byte-for-byte.
    pub fn effective_rate_bps(&self) -> u64 {
        if self.fluid_bps == 0 {
            self.config.rate_bps
        } else {
            (self.config.rate_bps.saturating_sub(self.fluid_bps))
                .max(self.config.rate_bps / 100)
                .max(1)
        }
    }

    /// The fluid engine's current share of this link, in bits per
    /// second.
    pub fn fluid_bps(&self) -> u64 {
        self.fluid_bps
    }

    /// Bytes currently queued awaiting transmission. Exact for a FIFO
    /// transmitter: the backlog is whatever the remaining busy time can
    /// serialise at the current residual rate.
    pub fn backlog_bytes(&self, now: SimTime) -> usize {
        let busy = self.next_free.since(now);
        ((busy.as_nanos() as u128 * self.effective_rate_bps() as u128) / (8 * 1_000_000_000))
            as usize
    }

    /// Offer an IP packet of `bytes` for transmission at `now`.
    ///
    /// Applies drop-tail admission, FIFO serialisation, propagation
    /// delay, and the fault injector, and returns when (or whether) the
    /// packet reaches the far end.
    pub fn transmit(&mut self, now: SimTime, bytes: usize) -> TxOutcome {
        let backlog = self.backlog_bytes(now);
        if backlog + bytes > self.config.queue_capacity {
            self.stats.dropped_queue += 1;
            return TxOutcome::QueueFull;
        }
        if let Some(red) = self.red.as_mut() {
            if red.should_drop(backlog, &mut self.rng) {
                self.stats.dropped_red += 1;
                return TxOutcome::Red;
            }
        }
        let start = self.next_free.max(now);
        let done = start + SimDuration::transmission(bytes, self.effective_rate_bps());
        self.next_free = done;
        self.stats.tx_packets += 1;
        self.stats.tx_bytes += bytes as u64;
        self.stats.peak_backlog_bytes = self.stats.peak_backlog_bytes.max((backlog + bytes) as u64);
        if self.fault.should_drop(&mut self.rng) {
            // The packet consumed transmit bandwidth but is lost in
            // flight; nothing arrives.
            self.stats.dropped_fault += 1;
            return TxOutcome::Faulted;
        }
        let arrival = done + self.config.propagation + self.fault.extra_delay(&mut self.rng);
        TxOutcome::Deliver { arrival }
    }

    /// Utilisation bookkeeping: when the transmitter frees up.
    pub fn next_free(&self) -> SimTime {
        self.next_free
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link(rate_bps: u64, prop_ms: u64, queue: usize) -> Link {
        Link::new(
            LinkId(0),
            NodeId(0),
            NodeId(1),
            LinkConfig {
                rate_bps,
                propagation: SimDuration::from_millis(prop_ms),
                queue_capacity: queue,
                mtu: 1500,
            },
        )
    }

    #[test]
    fn single_packet_latency_is_tx_plus_prop() {
        let mut l = link(8_000_000, 10, 1 << 20); // 1 byte / µs
        match l.transmit(SimTime::ZERO, 1000) {
            TxOutcome::Deliver { arrival } => {
                // 1000 µs serialisation + 10 ms propagation.
                assert_eq!(arrival, SimTime(1_000_000 + 10_000_000));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn back_to_back_packets_serialise_fifo() {
        let mut l = link(8_000_000, 0, 1 << 20);
        let a = l.transmit(SimTime::ZERO, 1000);
        let b = l.transmit(SimTime::ZERO, 1000);
        let (TxOutcome::Deliver { arrival: ta }, TxOutcome::Deliver { arrival: tb }) = (a, b)
        else {
            panic!("both should deliver");
        };
        assert_eq!(tb.since(ta), SimDuration::from_micros(1000));
    }

    #[test]
    fn backlog_drains_over_time() {
        let mut l = link(8_000_000, 0, 1 << 20);
        l.transmit(SimTime::ZERO, 1000);
        l.transmit(SimTime::ZERO, 1000);
        assert_eq!(l.backlog_bytes(SimTime::ZERO), 2000);
        assert_eq!(l.backlog_bytes(SimTime(1_000_000)), 1000);
        assert_eq!(l.backlog_bytes(SimTime(2_000_000)), 0);
    }

    #[test]
    fn drop_tail_when_queue_full() {
        let mut l = link(8_000, 0, 1500); // slow link, tiny queue
        assert!(matches!(
            l.transmit(SimTime::ZERO, 1000),
            TxOutcome::Deliver { .. }
        ));
        // Backlog is now 1000 bytes; a 1000-byte packet exceeds capacity.
        assert_eq!(l.transmit(SimTime::ZERO, 1000), TxOutcome::QueueFull);
        assert_eq!(l.stats.dropped_queue, 1);
        // A small packet still fits.
        assert!(matches!(
            l.transmit(SimTime::ZERO, 400),
            TxOutcome::Deliver { .. }
        ));
    }

    #[test]
    fn fault_injector_drops_consume_bandwidth() {
        let mut l = link(8_000_000, 0, 1 << 20);
        l.fault = FaultInjector::bernoulli(1.0);
        assert_eq!(l.transmit(SimTime::ZERO, 1000), TxOutcome::Faulted);
        assert_eq!(l.stats.dropped_fault, 1);
        assert_eq!(l.backlog_bytes(SimTime::ZERO), 1000);
    }

    #[test]
    fn fluid_share_reduces_residual_capacity() {
        let mut l = link(8_000_000, 0, 1 << 20); // 1 byte / µs
        assert_eq!(l.effective_rate_bps(), 8_000_000);
        l.fluid_bps = 4_000_000; // half the link is fluid
        assert_eq!(l.effective_rate_bps(), 4_000_000);
        match l.transmit(SimTime::ZERO, 1000) {
            // Serialisation takes twice as long against the residual.
            TxOutcome::Deliver { arrival } => assert_eq!(arrival, SimTime(2_000_000)),
            other => panic!("unexpected {other:?}"),
        }
        // Fully saturated: the 1% residual floor keeps packets moving.
        l.fluid_bps = 8_000_000;
        assert_eq!(l.effective_rate_bps(), 80_000);
        l.fluid_bps = 9_999_999_999;
        assert_eq!(l.effective_rate_bps(), 80_000);
        // Share withdrawn: configured rate restored exactly.
        l.fluid_bps = 0;
        assert_eq!(l.effective_rate_bps(), 8_000_000);
    }

    #[test]
    fn saturated_trickle_keeps_sub_100bps_links_alive() {
        // Regression guard for the residual floor on low-capacity
        // links: below 100 bit/s the 1%-of-capacity floor truncates to
        // zero in u64, and a fully fluid-saturated link would then
        // hand a 0 bit/s rate to `SimDuration::transmission`, which
        // asserts. The `.max(1)` clamp keeps the trickle path alive.
        let mut l = link(50, 0, 1 << 20);
        l.fluid_bps = 50;
        assert_eq!(l.effective_rate_bps(), 1);
        // Any partial saturation of a sub-100 bps link floors at 1 too.
        l.fluid_bps = 49;
        assert_eq!(l.effective_rate_bps(), 1);
        l.fluid_bps = u64::MAX;
        assert_eq!(l.effective_rate_bps(), 1);
        // The packet still serialises (very slowly) instead of
        // panicking: 10 bytes at 1 bit/s is 80 s on the wire.
        match l.transmit(SimTime::ZERO, 10) {
            TxOutcome::Deliver { arrival } => {
                assert_eq!(arrival, SimTime::ZERO + SimDuration::from_secs(80));
            }
            other => panic!("expected delivery, got {other:?}"),
        }
        // backlog_bytes against the 1 bps residual stays finite/exact.
        assert_eq!(l.backlog_bytes(SimTime::ZERO), 10);
        // Share withdrawn: the configured rate comes back untouched.
        l.fluid_bps = 0;
        assert_eq!(l.effective_rate_bps(), 50);
    }

    #[test]
    fn peak_backlog_tracks_the_queue_high_water_mark() {
        let mut l = link(8_000_000, 0, 1 << 20);
        assert_eq!(l.stats.peak_backlog_bytes, 0);
        l.transmit(SimTime::ZERO, 1000);
        l.transmit(SimTime::ZERO, 1000);
        assert_eq!(l.stats.peak_backlog_bytes, 2000);
        // Draining does not lower the high-water mark...
        l.transmit(SimTime(2_000_000), 500);
        assert_eq!(l.stats.peak_backlog_bytes, 2000);
        // ...and rejected packets never raise it.
        let mut tiny = link(8_000, 0, 1500);
        tiny.transmit(SimTime::ZERO, 1000);
        assert_eq!(tiny.transmit(SimTime::ZERO, 1000), TxOutcome::QueueFull);
        assert_eq!(tiny.stats.peak_backlog_bytes, 1000);
    }

    #[test]
    fn presets_have_expected_rates() {
        let p = SimDuration::from_millis(1);
        assert_eq!(LinkConfig::ethernet_10m(p).rate_bps, 10_000_000);
        assert_eq!(LinkConfig::t3(p).rate_bps, 45_000_000);
        assert_eq!(LinkConfig::t1(p).rate_bps, 1_544_000);
        // 1500 bytes on 10 Mbit/s Ethernet = 1.2 ms.
        assert_eq!(
            LinkConfig::ethernet_10m(p).tx_time(1500),
            SimDuration::from_micros(1200)
        );
    }
}
