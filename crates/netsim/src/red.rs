//! Random Early Detection (Floyd & Jacobson 1993) — the active queue
//! management family the paper's motivation cites when discussing how
//! routers might handle unresponsive streaming flows (\[FKSS01\],
//! \[MFW01\], \[SSZ98\] in §I).
//!
//! Classic gentle-less RED over the link's analytic backlog: an EWMA
//! of the queue size; no drops below `min_thresh`, probabilistic early
//! drops between the thresholds (scaled by the count since the last
//! drop, per the original paper), everything dropped above
//! `max_thresh`.

use crate::rng::SimRng;

/// RED parameters and state for one link.
#[derive(Debug, Clone)]
pub struct RedQueue {
    /// No early drops while the average queue is below this, bytes.
    pub min_thresh: usize,
    /// Everything is dropped when the average queue exceeds this, bytes.
    pub max_thresh: usize,
    /// Drop probability as the average reaches `max_thresh`.
    pub max_p: f64,
    /// EWMA weight for the average queue estimate.
    pub weight: f64,
    avg: f64,
    /// Packets since the last drop (spreads drops uniformly).
    count: u64,
    drops: u64,
}

impl RedQueue {
    /// Classic parameterisation for a queue of `capacity` bytes:
    /// thresholds at 25 % / 75 %, max_p = 0.1, weight = 0.002.
    pub fn for_capacity(capacity: usize) -> RedQueue {
        RedQueue::new(capacity / 4, capacity * 3 / 4, 0.1, 0.002)
    }

    /// Fully parameterised constructor.
    ///
    /// # Panics
    /// If thresholds are inverted or probabilities out of range.
    pub fn new(min_thresh: usize, max_thresh: usize, max_p: f64, weight: f64) -> RedQueue {
        assert!(min_thresh < max_thresh, "thresholds inverted");
        assert!((0.0..=1.0).contains(&max_p));
        assert!((0.0..=1.0).contains(&weight) && weight > 0.0);
        RedQueue {
            min_thresh,
            max_thresh,
            max_p,
            weight,
            avg: 0.0,
            count: 0,
            drops: 0,
        }
    }

    /// Current average queue estimate, bytes.
    pub fn avg(&self) -> f64 {
        self.avg
    }

    /// Early drops so far.
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Update the average with the instantaneous `backlog` and decide
    /// whether to early-drop the arriving packet.
    pub fn should_drop(&mut self, backlog: usize, rng: &mut SimRng) -> bool {
        self.avg += self.weight * (backlog as f64 - self.avg);
        if self.avg < self.min_thresh as f64 {
            self.count = 0;
            return false;
        }
        if self.avg >= self.max_thresh as f64 {
            self.count = 0;
            self.drops += 1;
            return true;
        }
        // Linear ramp between the thresholds, spread by the count
        // since the last drop (Floyd & Jacobson's p_a).
        let p_b = self.max_p * (self.avg - self.min_thresh as f64)
            / (self.max_thresh - self.min_thresh) as f64;
        let p_a = if self.count as f64 * p_b >= 1.0 {
            1.0
        } else {
            p_b / (1.0 - self.count as f64 * p_b)
        };
        self.count += 1;
        if rng.chance(p_a) {
            self.count = 0;
            self.drops += 1;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_queue_never_drops() {
        let mut red = RedQueue::for_capacity(64 * 1024);
        let mut rng = SimRng::new(1);
        for _ in 0..10_000 {
            assert!(!red.should_drop(0, &mut rng));
        }
        assert_eq!(red.drops(), 0);
    }

    #[test]
    fn saturated_queue_always_drops_once_avg_catches_up() {
        let mut red = RedQueue::new(1000, 2000, 0.1, 0.5); // fast EWMA
        let mut rng = SimRng::new(2);
        // Drive the average above max_thresh.
        for _ in 0..50 {
            red.should_drop(10_000, &mut rng);
        }
        assert!(red.avg() > 2000.0);
        assert!(red.should_drop(10_000, &mut rng));
    }

    #[test]
    fn drop_rate_ramps_between_thresholds() {
        let mut rng = SimRng::new(3);
        let rate_at = |backlog: usize, rng: &mut SimRng| -> f64 {
            let mut red = RedQueue::new(1000, 9000, 0.2, 1.0); // avg = instant
            let n = 20_000;
            let drops = (0..n).filter(|_| red.should_drop(backlog, rng)).count();
            drops as f64 / n as f64
        };
        let low = rate_at(1500, &mut rng);
        let mid = rate_at(5000, &mut rng);
        let high = rate_at(8500, &mut rng);
        assert!(low < mid && mid < high, "{low} {mid} {high}");
        assert!(low > 0.0);
        assert!(high < 1.0);
    }

    #[test]
    fn ewma_smooths_bursts() {
        let mut red = RedQueue::new(1000, 2000, 0.1, 0.002);
        let mut rng = SimRng::new(4);
        // A single instantaneous spike barely moves the average.
        red.should_drop(100_000, &mut rng);
        assert!(red.avg() < 1000.0, "avg = {}", red.avg());
    }

    #[test]
    #[should_panic(expected = "thresholds inverted")]
    fn inverted_thresholds_rejected() {
        RedQueue::new(2000, 1000, 0.1, 0.002);
    }

    /// End to end: RED on the bottleneck spreads drops so TCP keeps
    /// more goodput against an unresponsive flow than with drop-tail.
    #[test]
    fn red_vs_droptail_with_unresponsive_cross_traffic() {
        use crate::prelude::*;
        use crate::tcp::TcpConfig;
        use crate::tcp_apps::spawn_bulk_transfer;
        use bytes::Bytes;
        use std::net::Ipv4Addr;

        struct Firehose {
            peer: Ipv4Addr,
            rate_bps: f64,
        }
        impl Application for Firehose {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer_after(SimDuration::from_millis(5), 0);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
                let bytes = (self.rate_bps * 0.005 / 8.0) as usize;
                ctx.send_udp(5000, self.peer, 6000, Bytes::from(vec![0u8; bytes]));
                ctx.set_timer_after(SimDuration::from_millis(5), 0);
            }
        }
        struct Sink;
        impl Application for Sink {}

        let run = |use_red: bool| -> u64 {
            let mut sim = Simulation::new(77);
            let a = sim.add_host("a", Ipv4Addr::new(10, 0, 0, 1));
            let b = sim.add_host("b", Ipv4Addr::new(10, 0, 0, 2));
            let link = LinkConfig {
                rate_bps: 1_000_000,
                propagation: SimDuration::from_millis(20),
                queue_capacity: 30_000,
                mtu: 1500,
            };
            let (ab, ba) = sim.add_duplex(a, b, link);
            sim.core_mut().node_mut(a).default_route = Some(ab);
            sim.core_mut().node_mut(b).default_route = Some(ba);
            if use_red {
                sim.core_mut().link_mut(ab).red = Some(crate::red::RedQueue::for_capacity(30_000));
            }
            // An unresponsive 600 Kbit/s firehose.
            sim.add_app(
                a,
                Box::new(Firehose {
                    peer: Ipv4Addr::new(10, 0, 0, 2),
                    rate_bps: 600_000.0,
                }),
                None,
                false,
            );
            sim.add_app(b, Box::new(Sink), Some(6000), false);
            let report = spawn_bulk_transfer(
                &mut sim,
                a,
                b,
                Ipv4Addr::new(10, 0, 0, 2),
                (40000, 8080),
                10_000_000,
                TcpConfig::default(),
            );
            sim.run_until(SimTime::ZERO + SimDuration::from_secs(60));
            let acked = report.lock().unwrap().bytes_acked;
            acked
        };
        let droptail = run(false);
        let red = run(true);
        // Both make progress; the comparison itself is the ablation
        // bench's job — here we assert RED is active and functional.
        assert!(droptail > 0 && red > 0);
    }
}
