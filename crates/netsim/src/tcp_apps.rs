//! Ready-made TCP applications: a greedy bulk sender and its sink.
//!
//! The bulk sender is the classic "FTP flow" used as the reference
//! traffic in TCP-friendliness studies — exactly the comparator §VI's
//! proposed follow-up needs against the streaming players.

use crate::link::NodeId;
use crate::sim::{Application, Ctx, Simulation};
use crate::tcp::{TcpConfig, TcpDriver, TcpStats};
use crate::time::SimTime;
use std::net::Ipv4Addr;
use std::sync::{Arc, Mutex};
use turb_wire::tcp::TcpSegment;

/// Progress shared out of a bulk transfer.
#[derive(Debug, Clone, Default)]
pub struct BulkReport {
    /// Bytes acknowledged end to end.
    pub bytes_acked: u64,
    /// Bytes the receiver consumed.
    pub bytes_received: u64,
    /// When the transfer finished (all data acked), if it did.
    pub finished_at: Option<SimTime>,
    /// When the transfer started (SYN sent).
    pub started_at: Option<SimTime>,
    /// Sender-side connection stats at the end.
    pub sender_stats: TcpStats,
}

impl BulkReport {
    /// Average goodput over the transfer in bit/s, if finished.
    pub fn goodput_bps(&self) -> Option<f64> {
        match (self.started_at, self.finished_at) {
            (Some(a), Some(b)) if b > a => {
                Some(self.bytes_acked as f64 * 8.0 / b.since(a).as_secs_f64())
            }
            _ => None,
        }
    }
}

/// A greedy TCP sender: connects and pushes `total_bytes` as fast as
/// the window allows, then closes.
pub struct BulkSender {
    server: Ipv4Addr,
    server_port: u16,
    local_port: u16,
    total_bytes: u64,
    written: u64,
    driver: Option<TcpDriver>,
    config: TcpConfig,
    report: Arc<Mutex<BulkReport>>,
}

const TOKEN_PUMP: u64 = 0xF00D;

impl BulkSender {
    fn fill(&mut self, ctx: &mut Ctx<'_>) {
        let Some(driver) = self.driver.as_mut() else {
            return;
        };
        // Keep the send buffer topped up with zero-filled chunks.
        while self.written < self.total_bytes && driver.conn.send_capacity() > 0 {
            let chunk = (self.total_bytes - self.written).min(16 * 1024) as usize;
            let chunk = chunk.min(driver.conn.send_capacity());
            let accepted = driver.write(ctx, &vec![0u8; chunk]);
            self.written += accepted as u64;
            if accepted == 0 {
                break;
            }
        }
        if self.written >= self.total_bytes {
            driver.close(ctx);
        }
        let stats = driver.conn.stats();
        let mut report = self.report.lock().unwrap();
        report.bytes_acked = stats.bytes_acked;
        report.sender_stats = stats;
        if stats.bytes_acked >= self.total_bytes && report.finished_at.is_none() {
            report.finished_at = Some(ctx.now());
        }
    }
}

impl Application for BulkSender {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.report.lock().unwrap().started_at = Some(ctx.now());
        self.driver = Some(TcpDriver::connect(
            ctx,
            self.local_port,
            self.server,
            self.server_port,
            self.config,
        ));
    }

    fn on_tcp(&mut self, ctx: &mut Ctx<'_>, from: Ipv4Addr, segment: TcpSegment) {
        if let Some(driver) = self.driver.as_mut() {
            driver.on_segment(ctx, from, segment);
        }
        self.fill(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token == TOKEN_PUMP {
            return;
        }
        if let Some(driver) = self.driver.as_mut() {
            driver.on_timer(ctx, token);
        }
        self.fill(ctx);
    }
}

/// The matching sink: accepts one connection and drains it.
pub struct BulkReceiver {
    local_port: u16,
    config: TcpConfig,
    driver: Option<TcpDriver>,
    report: Arc<Mutex<BulkReport>>,
}

impl Application for BulkReceiver {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.driver = Some(TcpDriver::listen(ctx, self.local_port, self.config));
    }

    fn on_tcp(&mut self, ctx: &mut Ctx<'_>, from: Ipv4Addr, segment: TcpSegment) {
        if let Some(driver) = self.driver.as_mut() {
            driver.on_segment(ctx, from, segment);
            let drained = driver.conn.take_received();
            if !drained.is_empty() {
                self.report.lock().unwrap().bytes_received += drained.len() as u64;
            }
            // Mirror the peer's close.
            if driver.conn.state() == crate::tcp::State::CloseWait {
                driver.close(ctx);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if let Some(driver) = self.driver.as_mut() {
            driver.on_timer(ctx, token);
        }
    }
}

/// Install a bulk TCP transfer of `total_bytes` from `sender_node` to
/// `receiver_node`. Returns the shared progress report.
pub fn spawn_bulk_transfer(
    sim: &mut Simulation,
    sender_node: NodeId,
    receiver_node: NodeId,
    receiver_addr: Ipv4Addr,
    ports: (u16, u16),
    total_bytes: u64,
    config: TcpConfig,
) -> Arc<Mutex<BulkReport>> {
    let (local_port, server_port) = ports;
    let report = Arc::new(Mutex::new(BulkReport::default()));
    let receiver = BulkReceiver {
        local_port: server_port,
        config,
        driver: None,
        report: report.clone(),
    };
    let receiver_app = sim.add_app(receiver_node, Box::new(receiver), None, false);
    sim.bind_tcp_port(receiver_node, server_port, receiver_app);
    let sender = BulkSender {
        server: receiver_addr,
        server_port,
        local_port,
        total_bytes,
        written: 0,
        driver: None,
        config,
        report: report.clone(),
    };
    let sender_app = sim.add_app(sender_node, Box::new(sender), None, false);
    sim.bind_tcp_port(sender_node, local_port, sender_app);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultInjector;
    use crate::link::LinkConfig;
    use crate::prelude::*;

    fn two_hosts(seed: u64, link: LinkConfig) -> (Simulation, NodeId, NodeId) {
        let mut sim = Simulation::new(seed);
        let a = sim.add_host("a", Ipv4Addr::new(10, 0, 0, 1));
        let b = sim.add_host("b", Ipv4Addr::new(10, 0, 0, 2));
        let (ab, ba) = sim.add_duplex(a, b, link);
        sim.core_mut().node_mut(a).default_route = Some(ab);
        sim.core_mut().node_mut(b).default_route = Some(ba);
        (sim, a, b)
    }

    #[test]
    fn bulk_transfer_completes_on_a_clean_link() {
        let (mut sim, a, b) = two_hosts(1, LinkConfig::ethernet_10m(SimDuration::from_millis(10)));
        let report = spawn_bulk_transfer(
            &mut sim,
            a,
            b,
            Ipv4Addr::new(10, 0, 0, 2),
            (40000, 8080),
            1_000_000,
            TcpConfig::default(),
        );
        sim.run_to_idle(SimTime::ZERO + SimDuration::from_secs(120));
        let report = report.lock().unwrap();
        assert_eq!(report.bytes_received, 1_000_000);
        assert_eq!(report.bytes_acked, 1_000_000);
        let goodput = report.goodput_bps().expect("finished");
        // 10 Mbit/s link, 20 ms RTT: should get well above 1 Mbit/s
        // and below the line rate.
        assert!(goodput > 1_000_000.0, "goodput = {goodput}");
        assert!(goodput < 10_000_000.0, "goodput = {goodput}");
    }

    #[test]
    fn bulk_transfer_survives_loss() {
        let (mut sim, a, b) = two_hosts(2, LinkConfig::ethernet_10m(SimDuration::from_millis(10)));
        // 2 % loss in the data direction.
        let ab = turb_wire::ipv4::Ipv4Packet::new(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            turb_wire::ipv4::IpProtocol::Tcp,
            0,
            bytes::Bytes::new(),
        );
        let _ = ab;
        sim.core_mut().link_mut(crate::link::LinkId(0)).fault = FaultInjector::bernoulli(0.02);
        let report = spawn_bulk_transfer(
            &mut sim,
            a,
            b,
            Ipv4Addr::new(10, 0, 0, 2),
            (40000, 8080),
            500_000,
            TcpConfig::default(),
        );
        sim.run_to_idle(SimTime::ZERO + SimDuration::from_secs(600));
        let report = report.lock().unwrap();
        assert_eq!(report.bytes_received, 500_000, "reliable despite loss");
        let stats = report.sender_stats;
        assert!(
            stats.fast_retransmits + stats.timeouts > 0,
            "losses must have triggered recovery: {stats:?}"
        );
    }

    #[test]
    fn two_flows_share_a_bottleneck_roughly_fairly() {
        // A slow shared link; two simultaneous transfers of equal size.
        let link = LinkConfig {
            rate_bps: 2_000_000,
            propagation: SimDuration::from_millis(15),
            queue_capacity: 32 * 1024,
            mtu: 1500,
        };
        let (mut sim, a, b) = two_hosts(3, link);
        let size = 2_000_000u64;
        let r1 = spawn_bulk_transfer(
            &mut sim,
            a,
            b,
            Ipv4Addr::new(10, 0, 0, 2),
            (40000, 8080),
            size,
            TcpConfig::default(),
        );
        let r2 = spawn_bulk_transfer(
            &mut sim,
            a,
            b,
            Ipv4Addr::new(10, 0, 0, 2),
            (40001, 8081),
            size,
            TcpConfig::default(),
        );
        sim.run_to_idle(SimTime::ZERO + SimDuration::from_secs(600));
        let g1 = r1.lock().unwrap().goodput_bps().expect("flow 1 finished");
        let g2 = r2.lock().unwrap().goodput_bps().expect("flow 2 finished");
        let ratio = g1.max(g2) / g1.min(g2);
        assert!(ratio < 2.5, "unfair split: {g1} vs {g2}");
        // Combined they use most of the link.
        assert!(g1 + g2 > 1_000_000.0, "{g1} + {g2}");
    }

    #[test]
    fn transfer_is_deterministic() {
        let run = |seed: u64| -> (u64, Option<SimTime>) {
            let (mut sim, a, b) =
                two_hosts(seed, LinkConfig::ethernet_10m(SimDuration::from_millis(5)));
            let report = spawn_bulk_transfer(
                &mut sim,
                a,
                b,
                Ipv4Addr::new(10, 0, 0, 2),
                (40000, 8080),
                300_000,
                TcpConfig::default(),
            );
            sim.run_to_idle(SimTime::ZERO + SimDuration::from_secs(60));
            let r = report.lock().unwrap();
            (r.bytes_received, r.finished_at)
        };
        assert_eq!(run(7), run(7));
    }
}
