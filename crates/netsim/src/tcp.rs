//! A sans-IO TCP implementation: Reno congestion control over the
//! simulator's IP layer.
//!
//! §2.D notes both players "can use either TCP or UDP as a transport
//! protocol"; the paper forced UDP and left the TCP story — and the
//! TCP-friendliness question — to future work (§VI): "The use of
//! TCP-Friendly congestion control is important for continued
//! avoidance of Internet congestion collapse \[FF99\]". This module
//! provides the TCP needed for those follow-up experiments:
//!
//! * three-way handshake, graceful FIN close;
//! * cumulative ACKs, out-of-order reassembly;
//! * RFC 6298 RTT estimation with Karn's algorithm and exponential
//!   RTO backoff;
//! * Reno congestion control: slow start, congestion avoidance, fast
//!   retransmit / fast recovery on three duplicate ACKs.
//!
//! The [`Connection`] is a pure state machine (segments in → segments
//! out); [`TcpDriver`] couples one to a simulation [`Ctx`].

use crate::sim::Ctx;
use crate::time::{SimDuration, SimTime};
use bytes::Bytes;
use std::collections::{BTreeMap, VecDeque};
use std::net::Ipv4Addr;
use turb_wire::tcp::{TcpFlags, TcpSegment};

/// Maximum segment size: MTU 1500 − 20 IP − 20 TCP.
pub const MSS: usize = 1460;

/// Sequence-space comparison: is `a` strictly before `b`?
fn seq_lt(a: u32, b: u32) -> bool {
    (a.wrapping_sub(b) as i32) < 0
}

/// Sequence-space comparison: is `a` at or before `b`?
fn seq_le(a: u32, b: u32) -> bool {
    a == b || seq_lt(a, b)
}

/// Connection state (TIME_WAIT is collapsed into `Closed`; simulated
/// runs end long before 2MSL matters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum State {
    /// No connection.
    Closed,
    /// Passive open, awaiting SYN.
    Listen,
    /// Active open, SYN sent.
    SynSent,
    /// SYN received, SYN+ACK sent.
    SynReceived,
    /// Data transfer.
    Established,
    /// We sent FIN, awaiting its ACK.
    FinWait1,
    /// Our FIN is acked, awaiting the peer's FIN.
    FinWait2,
    /// Peer sent FIN; we may still send.
    CloseWait,
    /// We sent FIN after the peer's, awaiting its ACK.
    LastAck,
}

/// Counters and estimator state exposed for analysis.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TcpStats {
    /// Payload bytes handed to the connection by the application.
    pub bytes_written: u64,
    /// Payload bytes acknowledged by the peer.
    pub bytes_acked: u64,
    /// Payload bytes delivered to the application in order.
    pub bytes_received: u64,
    /// Segments emitted (including retransmissions).
    pub segments_sent: u64,
    /// Segments consumed.
    pub segments_received: u64,
    /// Fast retransmissions.
    pub fast_retransmits: u64,
    /// Timeout retransmissions.
    pub timeouts: u64,
    /// Smoothed RTT estimate, seconds.
    pub srtt: Option<f64>,
    /// Snapshot: bytes in flight.
    pub in_flight: u32,
    /// Snapshot: congestion window, bytes.
    pub cwnd: f64,
    /// Snapshot: whether an RTO deadline is armed.
    pub timer_armed: bool,
    /// Snapshot: send-buffer occupancy.
    pub send_buffered: usize,
}

impl TcpStats {
    /// Harvest the connection's counters into `registry` under
    /// `component` (cumulative counters only; snapshots such as cwnd
    /// become gauges).
    pub fn collect_metrics(&self, component: &str, registry: &mut turb_obs::MetricsRegistry) {
        registry.counter_add("tcp_bytes_acked_total", component, self.bytes_acked);
        registry.counter_add("tcp_bytes_received_total", component, self.bytes_received);
        registry.counter_add("tcp_segments_sent_total", component, self.segments_sent);
        registry.counter_add(
            "tcp_segments_received_total",
            component,
            self.segments_received,
        );
        registry.counter_add(
            "tcp_fast_retransmits_total",
            component,
            self.fast_retransmits,
        );
        registry.counter_add("tcp_rto_retransmits_total", component, self.timeouts);
        registry.gauge_set("tcp_cwnd_bytes", component, self.cwnd);
        if let Some(srtt) = self.srtt {
            registry.gauge_set("tcp_srtt_seconds", component, srtt);
        }
    }
}

/// Tunables.
#[derive(Debug, Clone, Copy)]
pub struct TcpConfig {
    /// Maximum segment size.
    pub mss: usize,
    /// Receive window advertised to the peer.
    pub recv_window: u16,
    /// Application send-buffer limit (write() backpressure).
    pub send_buffer: usize,
    /// Initial retransmission timeout.
    pub initial_rto: SimDuration,
    /// Lower RTO clamp.
    pub min_rto: SimDuration,
    /// Upper RTO clamp.
    pub max_rto: SimDuration,
    /// Initial congestion window, in segments (2 was the 2002-era
    /// default; RFC 3390 later allowed up to 4).
    pub initial_cwnd_segments: usize,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: MSS,
            recv_window: u16::MAX,
            send_buffer: 256 * 1024,
            initial_rto: SimDuration::from_secs(1),
            min_rto: SimDuration::from_millis(200),
            max_rto: SimDuration::from_secs(60),
            initial_cwnd_segments: 2,
        }
    }
}

/// A TCP connection endpoint.
#[derive(Debug)]
pub struct Connection {
    /// Current state.
    state: State,
    config: TcpConfig,
    local_port: u16,
    remote: Option<(Ipv4Addr, u16)>,

    // --- send side ---
    iss: u32,
    /// Oldest unacknowledged sequence number.
    snd_una: u32,
    /// Next sequence number to send.
    snd_nxt: u32,
    /// Highest sequence number ever sent (snd_nxt may be rolled back
    /// below this during go-back-N recovery; ACK validation uses this).
    snd_max: u32,
    /// Bytes from `snd_una` onward (acked bytes are drained).
    send_buf: VecDeque<u8>,
    fin_queued: bool,
    /// Sequence number the FIN occupies, once it has been transmitted
    /// at least once. Whether the FIN counts as "in flight" is derived
    /// from `snd_nxt` (go-back-N may roll the pointer back below it).
    fin_seq: Option<u32>,
    peer_window: u32,
    cwnd: f64,
    ssthresh: f64,
    dup_acks: u32,
    /// Fast-recovery flag: set until snd_una passes `recover`.
    in_recovery: bool,
    recover: u32,

    // --- timers / RTT ---
    rto: SimDuration,
    srtt: Option<f64>,
    rttvar: f64,
    rto_deadline: Option<SimTime>,
    /// (sequence, send time) of the segment being timed (Karn).
    rtt_sample: Option<(u32, SimTime)>,

    // --- receive side ---
    rcv_nxt: u32,
    ooo: BTreeMap<u32, Bytes>,
    recv_buf: VecDeque<u8>,
    peer_fin_received: bool,

    stats: TcpStats,
}

impl Connection {
    /// Active open: returns the connection and the SYN to transmit.
    pub fn connect(
        local_port: u16,
        remote_addr: Ipv4Addr,
        remote_port: u16,
        iss: u32,
        config: TcpConfig,
        now: SimTime,
    ) -> (Connection, TcpSegment) {
        let mut conn = Connection::new(local_port, config);
        conn.state = State::SynSent;
        conn.remote = Some((remote_addr, remote_port));
        conn.iss = iss;
        conn.snd_una = iss;
        conn.snd_nxt = iss.wrapping_add(1);
        conn.snd_max = conn.snd_nxt;
        conn.arm_rto(now);
        let syn = TcpSegment {
            src_port: local_port,
            dst_port: remote_port,
            seq: iss,
            ack: 0,
            flags: TcpFlags::SYN,
            window: config.recv_window,
            payload: Bytes::new(),
        };
        conn.stats.segments_sent += 1;
        (conn, syn)
    }

    /// Passive open.
    pub fn listen(local_port: u16, iss: u32, config: TcpConfig) -> Connection {
        let mut conn = Connection::new(local_port, config);
        conn.state = State::Listen;
        conn.iss = iss;
        conn.snd_una = iss;
        conn.snd_nxt = iss;
        conn
    }

    fn new(local_port: u16, config: TcpConfig) -> Connection {
        Connection {
            state: State::Closed,
            config,
            local_port,
            remote: None,
            iss: 0,
            snd_una: 0,
            snd_nxt: 0,
            snd_max: 0,
            send_buf: VecDeque::new(),
            fin_queued: false,
            fin_seq: None,
            peer_window: u32::from(u16::MAX),
            cwnd: (config.initial_cwnd_segments.max(1) * config.mss) as f64,
            ssthresh: 64.0 * 1024.0,
            dup_acks: 0,
            in_recovery: false,
            recover: 0,
            rto: config.initial_rto,
            srtt: None,
            rttvar: 0.0,
            rto_deadline: None,
            rtt_sample: None,
            rcv_nxt: 0,
            ooo: BTreeMap::new(),
            recv_buf: VecDeque::new(),
            peer_fin_received: false,
            stats: TcpStats::default(),
        }
    }

    /// Current state.
    pub fn state(&self) -> State {
        self.state
    }

    /// True once the handshake completed.
    pub fn is_established(&self) -> bool {
        matches!(
            self.state,
            State::Established
                | State::FinWait1
                | State::FinWait2
                | State::CloseWait
                | State::LastAck
        )
    }

    /// True once both directions are closed.
    pub fn is_closed(&self) -> bool {
        self.state == State::Closed
    }

    /// The peer, once known.
    pub fn remote(&self) -> Option<(Ipv4Addr, u16)> {
        self.remote
    }

    /// Counters.
    pub fn stats(&self) -> TcpStats {
        let mut s = self.stats;
        s.srtt = self.srtt;
        s.in_flight = self.flight();
        s.cwnd = self.cwnd;
        s.timer_armed = self.rto_deadline.is_some();
        s.send_buffered = self.send_buf.len();
        s
    }

    /// Congestion window, bytes.
    pub fn cwnd(&self) -> f64 {
        self.cwnd
    }

    /// Space left in the send buffer.
    pub fn send_capacity(&self) -> usize {
        self.config.send_buffer.saturating_sub(self.send_buf.len())
    }

    /// True when the FIN occupies sequence space at or below snd_nxt
    /// (i.e. it has been sent and not rolled back).
    fn fin_outstanding(&self) -> bool {
        self.fin_seq.is_some_and(|f| seq_lt(f, self.snd_nxt))
    }

    /// Queue application data; returns how much was accepted.
    pub fn write(&mut self, data: &[u8]) -> usize {
        if self.fin_queued || matches!(self.state, State::Closed | State::Listen) {
            return 0;
        }
        let n = data.len().min(self.send_capacity());
        self.send_buf.extend(&data[..n]);
        self.stats.bytes_written += n as u64;
        n
    }

    /// Begin a graceful close once all queued data is sent.
    pub fn close(&mut self) {
        self.fin_queued = true;
    }

    /// Drain in-order received payload.
    pub fn take_received(&mut self) -> Bytes {
        let drained: Vec<u8> = self.recv_buf.drain(..).collect();
        Bytes::from(drained)
    }

    /// Bytes in flight.
    fn flight(&self) -> u32 {
        self.snd_nxt.wrapping_sub(self.snd_una)
    }

    /// Effective send window.
    fn window(&self) -> u32 {
        (self.cwnd as u32)
            .min(self.peer_window)
            .max(self.config.mss as u32)
    }

    /// Offset of the first unsent byte within `send_buf`, accounting
    /// for a FIN occupying the last sequence unit.
    fn unsent_offset(&self) -> usize {
        let in_flight = self.flight() as usize;
        in_flight.saturating_sub(usize::from(self.fin_outstanding()))
    }

    fn arm_rto(&mut self, now: SimTime) {
        self.rto_deadline = Some(now + self.rto);
    }

    fn make_segment(&self, seq: u32, flags: TcpFlags, payload: Bytes) -> TcpSegment {
        let (_, remote_port) = self.remote.expect("remote known");
        TcpSegment {
            src_port: self.local_port,
            dst_port: remote_port,
            seq,
            ack: self.rcv_nxt,
            flags,
            window: self.config.recv_window,
            payload,
        }
    }

    fn ack_segment(&self) -> TcpSegment {
        self.make_segment(self.snd_nxt, TcpFlags::ACK, Bytes::new())
    }

    /// Emit whatever the window allows. Call after `write`, `close`,
    /// or processing input.
    pub fn pump(&mut self, now: SimTime) -> Vec<TcpSegment> {
        let mut out = Vec::new();
        if !self.is_established()
            || self.state == State::CloseWait && self.send_buf.is_empty() && !self.fin_queued
        {
            // CloseWait with nothing to send: nothing to do here.
        }
        if !self.is_established() {
            return out;
        }
        loop {
            let window = self.window();
            let flight = self.flight();
            if flight >= window {
                break;
            }
            let budget = (window - flight) as usize;
            let offset = self.unsent_offset();
            let unsent = self.send_buf.len().saturating_sub(offset);
            let chunk = unsent.min(self.config.mss).min(budget);
            if chunk > 0 && !self.fin_outstanding() {
                let payload: Bytes = self
                    .send_buf
                    .iter()
                    .skip(offset)
                    .take(chunk)
                    .copied()
                    .collect::<Vec<u8>>()
                    .into();
                let seq = self.snd_nxt;
                self.snd_nxt = self.snd_nxt.wrapping_add(chunk as u32);
                if seq_lt(self.snd_max, self.snd_nxt) {
                    self.snd_max = self.snd_nxt;
                }
                let flags = TcpFlags {
                    psh: chunk == unsent,
                    ..TcpFlags::ACK
                };
                out.push(self.make_segment(seq, flags, payload));
                self.stats.segments_sent += 1;
                if self.rtt_sample.is_none() {
                    self.rtt_sample = Some((self.snd_nxt, now));
                }
                continue;
            }
            // All data sent: maybe FIN.
            if self.fin_queued && !self.fin_outstanding() && unsent == 0 {
                let seq = self.snd_nxt;
                self.snd_nxt = self.snd_nxt.wrapping_add(1);
                if seq_lt(self.snd_max, self.snd_nxt) {
                    self.snd_max = self.snd_nxt;
                }
                self.fin_seq = Some(seq);
                out.push(self.make_segment(seq, TcpFlags::FIN_ACK, Bytes::new()));
                self.stats.segments_sent += 1;
                self.state = match self.state {
                    State::CloseWait => State::LastAck,
                    _ => State::FinWait1,
                };
            }
            break;
        }
        if self.flight() > 0 && self.rto_deadline.is_none() {
            self.arm_rto(now);
        }
        out
    }

    /// Retransmit the earliest unacknowledged segment.
    fn retransmit_head(&mut self) -> Option<TcpSegment> {
        if self.flight() == 0 {
            return None;
        }
        match self.state {
            State::SynSent => {
                self.stats.segments_sent += 1;
                let (_, remote_port) = self.remote?;
                return Some(TcpSegment {
                    src_port: self.local_port,
                    dst_port: remote_port,
                    seq: self.iss,
                    ack: 0,
                    flags: TcpFlags::SYN,
                    window: self.config.recv_window,
                    payload: Bytes::new(),
                });
            }
            State::SynReceived => {
                self.stats.segments_sent += 1;
                return Some(self.make_segment(self.iss, TcpFlags::SYN_ACK, Bytes::new()));
            }
            _ => {}
        }
        let data_in_buf = self.send_buf.len();
        let chunk = data_in_buf.min(self.config.mss);
        if chunk > 0 {
            let payload: Bytes = self
                .send_buf
                .iter()
                .take(chunk)
                .copied()
                .collect::<Vec<u8>>()
                .into();
            self.stats.segments_sent += 1;
            Some(self.make_segment(self.snd_una, TcpFlags::ACK, payload))
        } else if self.fin_outstanding() {
            self.stats.segments_sent += 1;
            Some(self.make_segment(self.snd_una, TcpFlags::FIN_ACK, Bytes::new()))
        } else {
            None
        }
    }

    /// RTO check; call when the armed timer fires.
    pub fn on_timer(&mut self, now: SimTime) -> Vec<TcpSegment> {
        let Some(deadline) = self.rto_deadline else {
            return Vec::new();
        };
        if now < deadline || self.flight() == 0 {
            if self.flight() == 0 {
                self.rto_deadline = None;
            }
            return Vec::new();
        }
        // Timeout: multiplicative backoff, collapse the window.
        self.stats.timeouts += 1;
        self.rto =
            SimDuration::from_nanos((self.rto.as_nanos() * 2).min(self.config.max_rto.as_nanos()));
        self.ssthresh = (self.flight() as f64 / 2.0).max(2.0 * self.config.mss as f64);
        self.cwnd = self.config.mss as f64;
        self.dup_acks = 0;
        self.in_recovery = false;
        self.rtt_sample = None; // Karn: never time a retransmission
        self.arm_rto(now);
        let head = self.retransmit_head();
        // Go-back-N: everything past the retransmitted head is
        // presumed lost; roll the send pointer back so pump() resends
        // it as the window reopens (otherwise each lost segment would
        // cost a full RTO).
        if let Some(seg) = &head {
            if !matches!(self.state, State::SynSent | State::SynReceived) {
                let rolled_back = self.snd_una.wrapping_add(seg.seq_len());
                if seq_lt(rolled_back, self.snd_nxt) {
                    // A rolled-back FIN re-sends automatically: it is
                    // no longer "outstanding" once snd_nxt ≤ fin_seq.
                    self.snd_nxt = rolled_back;
                }
            }
        }
        head.into_iter().collect()
    }

    /// When the caller should invoke [`Connection::on_timer`] next.
    pub fn next_timeout(&self) -> Option<SimTime> {
        self.rto_deadline
    }

    /// Process one incoming segment; returns segments to transmit.
    pub fn on_segment(&mut self, from: Ipv4Addr, seg: TcpSegment, now: SimTime) -> Vec<TcpSegment> {
        self.stats.segments_received += 1;
        if seg.flags.rst {
            self.state = State::Closed;
            return Vec::new();
        }
        match self.state {
            State::Listen => self.handle_listen(from, seg),
            State::SynSent => self.handle_syn_sent(seg, now),
            _ => self.handle_synchronized(seg, now),
        }
    }

    fn handle_listen(&mut self, from: Ipv4Addr, seg: TcpSegment) -> Vec<TcpSegment> {
        if !seg.flags.syn {
            return Vec::new();
        }
        self.remote = Some((from, seg.src_port));
        self.rcv_nxt = seg.seq.wrapping_add(1);
        self.peer_window = u32::from(seg.window);
        self.snd_nxt = self.iss.wrapping_add(1);
        self.snd_max = self.snd_nxt;
        self.snd_una = self.iss;
        self.state = State::SynReceived;
        self.stats.segments_sent += 1;
        vec![self.make_segment(self.iss, TcpFlags::SYN_ACK, Bytes::new())]
    }

    fn handle_syn_sent(&mut self, seg: TcpSegment, now: SimTime) -> Vec<TcpSegment> {
        if !(seg.flags.syn && seg.flags.ack) || seg.ack != self.iss.wrapping_add(1) {
            return Vec::new();
        }
        self.rcv_nxt = seg.seq.wrapping_add(1);
        self.snd_una = seg.ack;
        self.peer_window = u32::from(seg.window);
        self.state = State::Established;
        self.rto_deadline = None;
        let mut out = vec![self.ack_segment()];
        self.stats.segments_sent += 1;
        out.extend(self.pump(now));
        out
    }

    fn handle_synchronized(&mut self, seg: TcpSegment, now: SimTime) -> Vec<TcpSegment> {
        let mut out = Vec::new();
        self.peer_window = u32::from(seg.window);

        // --- ACK processing ---
        if seg.flags.ack {
            let ack = seg.ack;
            if seq_lt(self.snd_una, ack) && seq_le(ack, self.snd_max) {
                // An ACK may cover sequence space beyond a rolled-back
                // snd_nxt (the receiver held it out of order); fast
                // forward past it.
                if seq_lt(self.snd_nxt, ack) {
                    self.snd_nxt = ack;
                }
                let newly = ack.wrapping_sub(self.snd_una);
                // Completing the handshake from SynReceived.
                if self.state == State::SynReceived {
                    self.state = State::Established;
                }
                // Drain acked payload (the SYN/FIN sequence units are
                // not in the buffer).
                let fin_unit = u32::from(self.fin_outstanding() && ack == self.snd_max);
                let syn_unit = u32::from(self.snd_una == self.iss);
                let payload_acked =
                    (newly.saturating_sub(fin_unit).saturating_sub(syn_unit)) as usize;
                let drain = payload_acked.min(self.send_buf.len());
                self.send_buf.drain(..drain);
                self.stats.bytes_acked += drain as u64;
                self.snd_una = ack;
                self.dup_acks = 0;

                // RTT sampling (Karn: only if the timed seq is covered).
                if let Some((timed_seq, sent_at)) = self.rtt_sample {
                    if seq_le(timed_seq, ack) {
                        let sample = now.since(sent_at).as_secs_f64();
                        self.update_rtt(sample);
                        self.rtt_sample = None;
                    }
                }

                // Congestion control.
                if self.in_recovery {
                    if seq_le(self.recover, ack) {
                        self.in_recovery = false;
                        self.cwnd = self.ssthresh;
                    } else {
                        // Partial ack: retransmit the next hole.
                        out.extend(self.retransmit_head());
                    }
                } else if self.cwnd < self.ssthresh {
                    self.cwnd += self.config.mss as f64; // slow start
                } else {
                    self.cwnd += self.config.mss as f64 * self.config.mss as f64 / self.cwnd;
                }

                // FIN fully acked?
                if self.fin_seq.is_some_and(|f| seq_lt(f, ack)) {
                    self.state = match self.state {
                        State::FinWait1 => State::FinWait2,
                        State::LastAck => State::Closed,
                        s => s,
                    };
                }

                if self.flight() == 0 {
                    self.rto_deadline = None;
                    self.rto = self
                        .srtt
                        .map(|srtt| self.rto_from_estimate(srtt))
                        .unwrap_or(self.config.initial_rto);
                } else {
                    self.arm_rto(now);
                }
            } else if ack == self.snd_una
                && seg.payload.is_empty()
                && !seg.flags.syn
                && !seg.flags.fin
                && self.flight() > 0
            {
                // Duplicate ACK.
                self.dup_acks += 1;
                if self.dup_acks == 3 && !self.in_recovery {
                    // Fast retransmit + fast recovery.
                    self.stats.fast_retransmits += 1;
                    self.ssthresh = (self.flight() as f64 / 2.0).max(2.0 * self.config.mss as f64);
                    self.cwnd = self.ssthresh + 3.0 * self.config.mss as f64;
                    self.in_recovery = true;
                    self.recover = self.snd_nxt;
                    self.rtt_sample = None;
                    out.extend(self.retransmit_head());
                } else if self.dup_acks > 3 {
                    self.cwnd += self.config.mss as f64; // window inflation
                }
            }
        }

        // --- payload processing ---
        let had_payload_or_fin = !seg.payload.is_empty() || seg.flags.fin;
        if !seg.payload.is_empty() {
            self.ingest(seg.seq, seg.payload.clone());
        }
        if seg.flags.fin {
            let fin_seq = seg.seq.wrapping_add(seg.payload.len() as u32);
            if fin_seq == self.rcv_nxt {
                self.rcv_nxt = self.rcv_nxt.wrapping_add(1);
                self.peer_fin_received = true;
                self.state = match self.state {
                    State::Established => State::CloseWait,
                    State::FinWait1 => State::CloseWait, // simultaneous close
                    State::FinWait2 => State::Closed,
                    s => s,
                };
            }
        }
        if had_payload_or_fin {
            out.push(self.ack_segment());
            self.stats.segments_sent += 1;
        }

        // New window/acks may allow more data out.
        out.extend(self.pump(now));
        out
    }

    fn ingest(&mut self, seq: u32, payload: Bytes) {
        if seq_le(seq.wrapping_add(payload.len() as u32), self.rcv_nxt) {
            return; // entirely old
        }
        if seq != self.rcv_nxt {
            if seq_lt(self.rcv_nxt, seq) && self.ooo.len() < 256 {
                self.ooo.insert(seq, payload);
            } else if seq_lt(seq, self.rcv_nxt) {
                // Partial overlap: keep the new tail.
                let skip = self.rcv_nxt.wrapping_sub(seq) as usize;
                if skip < payload.len() {
                    self.accept_in_order(payload.slice(skip..));
                }
            }
            return;
        }
        self.accept_in_order(payload);
        // Drain contiguous out-of-order segments.
        while let Some((&seq, _)) = self.ooo.first_key_value() {
            if seq_lt(self.rcv_nxt, seq) {
                break;
            }
            let (seq, data) = self.ooo.pop_first().expect("checked");
            let skip = self.rcv_nxt.wrapping_sub(seq) as usize;
            if skip < data.len() {
                self.accept_in_order(data.slice(skip..));
            }
        }
    }

    fn accept_in_order(&mut self, payload: Bytes) {
        self.rcv_nxt = self.rcv_nxt.wrapping_add(payload.len() as u32);
        self.stats.bytes_received += payload.len() as u64;
        self.recv_buf.extend(payload.iter());
    }

    fn update_rtt(&mut self, sample: f64) {
        match self.srtt {
            None => {
                self.srtt = Some(sample);
                self.rttvar = sample / 2.0;
            }
            Some(srtt) => {
                const ALPHA: f64 = 1.0 / 8.0;
                const BETA: f64 = 1.0 / 4.0;
                self.rttvar = (1.0 - BETA) * self.rttvar + BETA * (srtt - sample).abs();
                self.srtt = Some((1.0 - ALPHA) * srtt + ALPHA * sample);
            }
        }
        self.rto = self.rto_from_estimate(self.srtt.expect("just set"));
    }

    fn rto_from_estimate(&self, srtt: f64) -> SimDuration {
        let rto = srtt + (4.0 * self.rttvar).max(0.01);
        SimDuration::from_secs_f64(rto)
            .max(self.config.min_rto)
            .min(self.config.max_rto)
    }
}

/// Timer token used by [`TcpDriver`].
pub const TCP_TIMER_TOKEN: u64 = 0x7C9;

/// Couples a [`Connection`] to a simulation [`Ctx`]: transmits pump
/// output and keeps the RTO timer armed.
#[derive(Debug)]
pub struct TcpDriver {
    /// The connection being driven.
    pub conn: Connection,
    remote_addr: Ipv4Addr,
    /// The single pending timer wakeup, if any — arming is
    /// deduplicated so a busy connection doesn't flood the event queue
    /// with stale timers.
    armed_at: Option<SimTime>,
}

impl TcpDriver {
    /// Active open: sends the SYN immediately.
    pub fn connect(
        ctx: &mut Ctx<'_>,
        local_port: u16,
        remote_addr: Ipv4Addr,
        remote_port: u16,
        config: TcpConfig,
    ) -> TcpDriver {
        let iss = ctx.rng().next_u64() as u32;
        let (conn, syn) =
            Connection::connect(local_port, remote_addr, remote_port, iss, config, ctx.now());
        ctx.send_tcp(remote_addr, &syn);
        let mut driver = TcpDriver {
            conn,
            remote_addr,
            armed_at: None,
        };
        driver.arm(ctx);
        driver
    }

    /// Passive open (the remote address is learned from the SYN).
    pub fn listen(ctx: &mut Ctx<'_>, local_port: u16, config: TcpConfig) -> TcpDriver {
        let iss = ctx.rng().next_u64() as u32;
        TcpDriver {
            conn: Connection::listen(local_port, iss, config),
            remote_addr: Ipv4Addr::UNSPECIFIED,
            armed_at: None,
        }
    }

    fn arm(&mut self, ctx: &mut Ctx<'_>) {
        let Some(deadline) = self.conn.next_timeout() else {
            return;
        };
        // At most one pending wakeup: skip if one is already scheduled
        // at or before the deadline (a too-early wakeup is harmless —
        // it no-ops and re-arms).
        if let Some(armed) = self.armed_at {
            if armed > ctx.now() && armed <= deadline {
                return;
            }
        }
        ctx.set_timer_at(deadline, TCP_TIMER_TOKEN);
        self.armed_at = Some(deadline.max(ctx.now()));
    }

    fn transmit(&mut self, ctx: &mut Ctx<'_>, segments: Vec<TcpSegment>) {
        for seg in segments {
            ctx.send_tcp(self.remote_addr, &seg);
        }
        self.arm(ctx);
    }

    /// Feed an incoming segment.
    pub fn on_segment(&mut self, ctx: &mut Ctx<'_>, from: Ipv4Addr, seg: TcpSegment) {
        if self.remote_addr.is_unspecified() {
            self.remote_addr = from;
        }
        let out = self.conn.on_segment(from, seg, ctx.now());
        self.transmit(ctx, out);
    }

    /// Forward a fired timer.
    pub fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token != TCP_TIMER_TOKEN {
            return;
        }
        // This wakeup is consumed.
        if self.armed_at.is_some_and(|t| t <= ctx.now()) {
            self.armed_at = None;
        }
        let out = self.conn.on_timer(ctx.now());
        self.transmit(ctx, out);
        // Re-arm for the next deadline even when nothing fired (the
        // timer may have been stale).
        self.arm(ctx);
    }

    /// Queue data and push out what the window allows.
    pub fn write(&mut self, ctx: &mut Ctx<'_>, data: &[u8]) -> usize {
        let n = self.conn.write(data);
        let out = self.conn.pump(ctx.now());
        self.transmit(ctx, out);
        n
    }

    /// Graceful close.
    pub fn close(&mut self, ctx: &mut Ctx<'_>) {
        self.conn.close();
        let out = self.conn.pump(ctx.now());
        self.transmit(ctx, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    fn t(ms: u64) -> SimTime {
        SimTime(ms * 1_000_000)
    }

    /// Drive two connections against each other with a perfect network.
    fn exchange(
        client: &mut Connection,
        server: &mut Connection,
        mut from_client: Vec<TcpSegment>,
        now: SimTime,
        rounds: usize,
    ) {
        let mut from_server: Vec<TcpSegment> = Vec::new();
        for _ in 0..rounds {
            let mut next_server: Vec<TcpSegment> = Vec::new();
            for seg in from_client.drain(..) {
                next_server.extend(server.on_segment(A, seg, now));
            }
            from_server.extend(next_server);
            let mut next_client: Vec<TcpSegment> = Vec::new();
            for seg in from_server.drain(..) {
                next_client.extend(client.on_segment(B, seg, now));
            }
            from_client = next_client;
            if from_client.is_empty() {
                break;
            }
        }
    }

    fn established_pair() -> (Connection, Connection) {
        let (mut client, syn) = Connection::connect(40000, B, 80, 1000, TcpConfig::default(), t(0));
        let mut server = Connection::listen(80, 9000, TcpConfig::default());
        exchange(&mut client, &mut server, vec![syn], t(1), 8);
        assert!(client.is_established());
        assert!(server.is_established());
        (client, server)
    }

    #[test]
    fn three_way_handshake() {
        let (client, server) = established_pair();
        assert_eq!(client.state(), State::Established);
        assert_eq!(server.state(), State::Established);
        assert_eq!(client.stats().segments_sent, 2); // SYN + ACK
    }

    #[test]
    fn in_order_transfer() {
        let (mut client, mut server) = established_pair();
        let data = vec![0xabu8; 10_000];
        assert_eq!(client.write(&data), 10_000);
        let out = client.pump(t(2));
        assert!(!out.is_empty());
        exchange(&mut client, &mut server, out, t(3), 32);
        assert_eq!(server.take_received(), Bytes::from(data));
        assert_eq!(client.stats().bytes_acked, 10_000);
        assert_eq!(client.stats().fast_retransmits, 0);
    }

    #[test]
    fn segments_respect_mss_and_window() {
        let (mut client, _server) = established_pair();
        client.write(&vec![1u8; 100_000]);
        let out = client.pump(t(2));
        for seg in &out {
            assert!(seg.payload.len() <= MSS);
        }
        // Initial flight bounded by cwnd (2 MSS at start... grown by
        // handshake ack to ≥2 MSS; certainly ≤ 64 KB ssthresh).
        let flight: usize = out.iter().map(|s| s.payload.len()).sum();
        assert!(flight as f64 <= client.cwnd() + MSS as f64);
    }

    #[test]
    fn slow_start_doubles_cwnd() {
        let (mut client, mut server) = established_pair();
        let before = client.cwnd();
        client.write(&vec![2u8; 50_000]);
        let out = client.pump(t(2));
        exchange(&mut client, &mut server, out, t(3), 64);
        assert!(client.cwnd() > before, "{} vs {before}", client.cwnd());
    }

    #[test]
    fn lost_segment_triggers_fast_retransmit() {
        let (mut client, mut server) = established_pair();
        client.write(&vec![3u8; 20_000]);
        let mut out = client.pump(t(2));
        assert!(out.len() >= 2);
        // Drop the first data segment.
        let dropped = out.remove(0);
        let mut acks = Vec::new();
        for seg in out {
            acks.extend(server.on_segment(A, seg, t(3)));
        }
        // Feed the duplicate ACKs back: 3 dups → fast retransmit.
        let mut retrans = Vec::new();
        for ack in acks {
            retrans.extend(client.on_segment(B, ack, t(4)));
        }
        let retransmitted: Vec<&TcpSegment> =
            retrans.iter().filter(|s| s.seq == dropped.seq).collect();
        if client.stats().fast_retransmits > 0 {
            assert!(!retransmitted.is_empty(), "head must be retransmitted");
        } else {
            // Not enough dupacks in flight (small initial window):
            // the RTO path must still recover it.
            let out = client.on_timer(t(4_000));
            assert!(out.iter().any(|s| s.seq == dropped.seq));
        }
        // Deliver everything; the stream must complete.
        let mut pending = retrans;
        pending.push(dropped);
        exchange(&mut client, &mut server, pending, t(5), 64);
        assert_eq!(server.stats().bytes_received, 20_000);
    }

    #[test]
    fn timeout_collapses_cwnd_and_backs_off() {
        let (mut client, _server) = established_pair();
        client.write(&vec![4u8; 50_000]);
        let _lost = client.pump(t(2));
        let cwnd_before = client.cwnd();
        let rto1 = client.next_timeout().expect("armed");
        let out = client.on_timer(rto1);
        assert_eq!(out.len(), 1, "retransmit exactly the head");
        assert!(client.cwnd() < cwnd_before);
        assert_eq!(client.cwnd(), MSS as f64);
        assert_eq!(client.stats().timeouts, 1);
        // Backoff: next deadline at least twice as far out.
        let rto2 = client.next_timeout().expect("re-armed");
        assert!(rto2.since(rto1) >= SimDuration::from_secs(2));
    }

    #[test]
    fn out_of_order_segments_reassemble() {
        // A wide initial window so five segments leave in one flight.
        let config = TcpConfig {
            initial_cwnd_segments: 8,
            ..TcpConfig::default()
        };
        let (mut client, syn) = Connection::connect(40000, B, 80, 1000, config, t(0));
        let mut server = Connection::listen(80, 9000, config);
        exchange(&mut client, &mut server, vec![syn], t(1), 8);
        client.write(&vec![5u8; 5 * MSS]);
        let mut out = client.pump(t(2));
        out.reverse(); // deliver in reverse order
        let mut acks = Vec::new();
        for seg in out {
            acks.extend(server.on_segment(A, seg, t(3)));
        }
        assert_eq!(server.stats().bytes_received, 5 * MSS as u64);
        // Retire the ACKs so the client can finish cleanly.
        for ack in acks {
            client.on_segment(B, ack, t(4));
        }
        assert_eq!(client.stats().bytes_acked, 5 * MSS as u64);
    }

    #[test]
    fn duplicate_data_is_not_double_delivered() {
        let (mut client, mut server) = established_pair();
        client.write(&vec![6u8; 1000]);
        let out = client.pump(t(2));
        assert_eq!(out.len(), 1);
        server.on_segment(A, out[0].clone(), t(3));
        server.on_segment(A, out[0].clone(), t(4));
        assert_eq!(server.stats().bytes_received, 1000);
        assert_eq!(server.take_received().len(), 1000);
    }

    #[test]
    fn graceful_close_both_ways() {
        let (mut client, mut server) = established_pair();
        client.write(b"bye");
        client.close();
        let out = client.pump(t(2));
        exchange(&mut client, &mut server, out, t(3), 16);
        assert_eq!(server.take_received(), Bytes::from_static(b"bye"));
        assert_eq!(server.state(), State::CloseWait);
        assert_eq!(client.state(), State::FinWait2);
        // Server closes its side.
        server.close();
        let out = server.pump(t(4));
        let mut back = Vec::new();
        for seg in out {
            back.extend(client.on_segment(B, seg, t(5)));
        }
        for seg in back {
            server.on_segment(A, seg, t(6));
        }
        assert!(client.is_closed());
        assert!(server.is_closed());
    }

    #[test]
    fn rtt_estimation_sets_srtt() {
        let (mut client, mut server) = established_pair();
        client.write(&vec![7u8; 1000]);
        let out = client.pump(t(10));
        let mut acks = Vec::new();
        for seg in out {
            acks.extend(server.on_segment(A, seg, t(50)));
        }
        for ack in acks {
            client.on_segment(B, ack, t(90)); // 80 ms after send
        }
        let srtt = client.stats().srtt.expect("sampled");
        assert!((srtt - 0.08).abs() < 0.005, "srtt = {srtt}");
    }

    #[test]
    fn write_respects_send_buffer_backpressure() {
        let config = TcpConfig {
            send_buffer: 1000,
            ..TcpConfig::default()
        };
        let (mut client, _syn) = Connection::connect(1, B, 2, 0, config, t(0));
        assert_eq!(client.write(&vec![0u8; 5000]), 1000);
        assert_eq!(client.write(&[0u8; 10]), 0);
        assert_eq!(client.send_capacity(), 0);
    }

    #[test]
    fn rst_kills_the_connection() {
        let (mut client, _server) = established_pair();
        let rst = TcpSegment {
            src_port: 80,
            dst_port: 40000,
            seq: 0,
            ack: 0,
            flags: TcpFlags {
                rst: true,
                ..TcpFlags::default()
            },
            window: 0,
            payload: Bytes::new(),
        };
        client.on_segment(B, rst, t(9));
        assert!(client.is_closed());
    }

    #[test]
    fn seq_arithmetic_wraps() {
        assert!(seq_lt(u32::MAX, 1));
        assert!(seq_lt(u32::MAX - 10, 5));
        assert!(!seq_lt(5, u32::MAX - 10));
        assert!(seq_le(7, 7));
    }
}
