//! A deterministic hierarchical timing wheel for the event queue.
//!
//! The simulator's original scheduler was a `BinaryHeap` ordered by
//! `(time, insertion sequence)`. That order is the engine's contract:
//! earlier sim-time first, and FIFO among events scheduled for the
//! same instant. The wheel reproduces that order *exactly* — pop for
//! pop — while making the common case (events scheduled a short,
//! bounded distance into the future) O(1) amortised instead of
//! O(log n).
//!
//! ## Layout
//!
//! Absolute sim-time is quantised to ticks of `2^TICK_SHIFT`
//! nanoseconds (8.2 µs — finer than any serialisation delay in the
//! corpus, far coarser than the nanosecond clock). Four levels of 256
//! slots each cover `256^4 = 2^32` ticks (~9.8 simulated hours):
//!
//! * level 0: one tick per slot,
//! * level `l`: `256^l` ticks per slot,
//! * anything at or beyond the horizon waits in a far-future
//!   `BinaryHeap` and is swept in when the wheel's range catches up.
//!
//! Every entry strictly after the current tick lives in exactly one
//! slot (or the overflow heap). Entries **at or before** the current
//! tick live in `current`: a small binary heap ordered by the exact
//! `(time, seq)` key. Sub-tick ordering therefore never depends on
//! the wheel geometry — the wheel only decides *when a tick's events
//! become current*, and the heap restores the total order within it.
//! That is what makes the wheel bit-identical to the old scheduler
//! instead of merely "close enough" (see DESIGN.md §5).
//!
//! ## Advancing
//!
//! When `current` drains, the wheel scans level 0's occupancy bitmap
//! for the next non-empty slot in the current 256-tick era. At an era
//! boundary it cascades the next level-1 slot (re-dispatching each
//! entry, which now lands in level 0 or `current`), and likewise for
//! deeper levels at their `256^l`-aligned boundaries. If the whole
//! wheel is empty it jumps straight to the earliest far-future entry.
//! Each entry is touched at most `LEVELS` times total, and slot
//! scans are 4 × `u64` bitmap words per level — no per-slot walk.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// log2 of nanoseconds per tick: 2^13 ns ≈ 8.2 µs.
const TICK_SHIFT: u32 = 13;
/// log2 of slots per level.
const BITS: u32 = 8;
/// Slots per level.
const SLOTS: usize = 1 << BITS;
/// Bitmask selecting a slot index within a level.
const SLOT_MASK: u64 = (SLOTS as u64) - 1;
/// Wheel levels; together they span `2^(BITS * LEVELS)` ticks.
const LEVELS: usize = 4;
/// Ticks covered by all wheel levels; beyond this is overflow.
const HORIZON_TICKS: u64 = 1 << (BITS * LEVELS as u32);
/// u64 words in one level's occupancy bitmap.
const BITMAP_WORDS: usize = SLOTS / 64;

/// Scheduler-internal diagnostics. These describe the *engine*, not
/// the simulated network, so they are reported alongside telemetry
/// but never folded into the cross-scheduler identity set.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Occupied slots drained into the current heap (level 0).
    pub slots_touched: u64,
    /// Occupied higher-level slots re-dispatched downward.
    pub cascades: u64,
    /// Entries that landed in the far-future overflow heap.
    pub overflow_events: u64,
}

/// One scheduled item: the exact `(time, seq)` key plus its payload.
struct Entry<T> {
    time: SimTime,
    seq: u64,
    value: T,
}

// Manual impls: ordering ignores the payload entirely. Reversed so
// that `BinaryHeap` (a max-heap) pops the earliest (time, seq) first.
impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// Deterministic hierarchical timing wheel. See the module docs for
/// the layout and the determinism argument.
pub struct TimingWheel<T> {
    /// The wheel has conceptually advanced to this tick: every slot
    /// entry is strictly after it, everything at or before it is in
    /// `current`. Monotone; only moves when `current` is empty.
    current_tick: u64,
    /// Entries at or before `current_tick`, exact `(time, seq)` order.
    current: BinaryHeap<Entry<T>>,
    /// `LEVELS × SLOTS` buckets, flat-indexed `level * SLOTS + slot`.
    slots: Vec<Vec<Entry<T>>>,
    /// Per-level occupancy bitmaps; bit set ⇔ slot non-empty.
    occupied: [[u64; BITMAP_WORDS]; LEVELS],
    /// Entries at least `HORIZON_TICKS` past `current_tick` at insert.
    overflow: BinaryHeap<Entry<T>>,
    /// Total entries across current + slots + overflow.
    len: usize,
    /// Scratch buffer reused by slot drains to avoid reallocating.
    scratch: Vec<Entry<T>>,
    stats: SchedStats,
}

impl<T> TimingWheel<T> {
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// `capacity` pre-sizes the current-tick heap, the stand-in for
    /// the old scheduler's pre-sized `BinaryHeap`.
    pub fn with_capacity(capacity: usize) -> Self {
        let mut slots = Vec::with_capacity(LEVELS * SLOTS);
        slots.resize_with(LEVELS * SLOTS, Vec::new);
        TimingWheel {
            current_tick: 0,
            current: BinaryHeap::with_capacity(capacity),
            slots,
            occupied: [[0u64; BITMAP_WORDS]; LEVELS],
            overflow: BinaryHeap::new(),
            len: 0,
            scratch: Vec::new(),
            stats: SchedStats::default(),
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn stats(&self) -> SchedStats {
        self.stats
    }

    fn tick_of(time: SimTime) -> u64 {
        time.as_nanos() >> TICK_SHIFT
    }

    /// Schedule `value` at `(time, seq)`. The caller guarantees `seq`
    /// is unique and monotone (the engine's insertion counter) and
    /// that `time` is never before an already-popped instant.
    pub fn push(&mut self, time: SimTime, seq: u64, value: T) {
        self.len += 1;
        self.dispatch(Entry { time, seq, value });
    }

    /// Earliest pending `(time, seq, value)`, or `None` when empty.
    pub fn pop(&mut self) -> Option<(SimTime, u64, T)> {
        if self.len == 0 {
            return None;
        }
        while self.current.is_empty() {
            self.advance();
        }
        self.len -= 1;
        self.current.pop().map(|e| (e.time, e.seq, e.value))
    }

    /// Time of the earliest pending entry without removing it. Takes
    /// `&mut self` because it may advance the wheel to surface it.
    pub fn next_time(&mut self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        while self.current.is_empty() {
            self.advance();
        }
        self.current.peek().map(|e| e.time)
    }

    /// Route one entry to the current heap, a wheel slot, or overflow.
    /// Does not touch `len` — internal moves reuse it unchanged.
    fn dispatch(&mut self, entry: Entry<T>) {
        let tick = Self::tick_of(entry.time);
        if tick <= self.current_tick {
            self.current.push(entry);
            return;
        }
        let delta = tick - self.current_tick;
        if delta >= HORIZON_TICKS {
            self.stats.overflow_events += 1;
            self.overflow.push(entry);
            return;
        }
        let mut level = 0usize;
        while delta >= 1u64 << (BITS * (level as u32 + 1)) {
            level += 1;
        }
        let slot = ((tick >> (BITS * level as u32)) & SLOT_MASK) as usize;
        self.occupied[level][slot / 64] |= 1u64 << (slot % 64);
        self.slots[level * SLOTS + slot].push(entry);
    }

    /// First occupied slot of `level` at index ≥ `from`, if any.
    fn next_occupied(&self, level: usize, from: usize) -> Option<usize> {
        if from >= SLOTS {
            return None;
        }
        let bitmap = &self.occupied[level];
        let mut word = from / 64;
        let mut bits = bitmap[word] & (!0u64 << (from % 64));
        loop {
            if bits != 0 {
                return Some(word * 64 + bits.trailing_zeros() as usize);
            }
            word += 1;
            if word == BITMAP_WORDS {
                return None;
            }
            bits = bitmap[word];
        }
    }

    fn all_levels_empty(&self) -> bool {
        self.occupied
            .iter()
            .all(|bitmap| bitmap.iter().all(|&w| w == 0))
    }

    /// Move every entry out of `(level, slot)` and re-route it. For
    /// level 0 every entry lands in `current` (its tick equals the
    /// new `current_tick`); for higher levels entries spread across
    /// lower levels and `current`.
    fn drain_slot(&mut self, level: usize, slot: usize) {
        self.occupied[level][slot / 64] &= !(1u64 << (slot % 64));
        let mut batch = std::mem::take(&mut self.scratch);
        std::mem::swap(&mut batch, &mut self.slots[level * SLOTS + slot]);
        for entry in batch.drain(..) {
            self.dispatch(entry);
        }
        self.scratch = batch; // keep the allocation for the next drain
    }

    /// Precondition: `current` empty, `len > 0`. Postcondition holds
    /// eventually (the loop runs until `current` is non-empty).
    fn advance(&mut self) {
        debug_assert!(self.current.is_empty() && self.len > 0);
        if self.all_levels_empty() {
            // Everything pending is far-future: jump straight to the
            // earliest overflow tick and sweep in what now fits.
            let target = self
                .overflow
                .peek()
                .map(|e| Self::tick_of(e.time))
                .expect("len > 0 with empty wheel implies overflow entries");
            self.current_tick = target;
            self.sweep_overflow();
            // The earliest entry has tick == current_tick, so it is
            // in `current` now.
            return;
        }
        loop {
            let cursor = (self.current_tick & SLOT_MASK) as usize;
            if let Some(slot) = self.next_occupied(0, cursor + 1) {
                // Jump within the current 256-tick era.
                self.current_tick = (self.current_tick & !SLOT_MASK) | slot as u64;
                self.stats.slots_touched += 1;
                self.drain_slot(0, slot);
                return; // the slot was non-empty ⇒ current is too
            }
            // Era exhausted: step to the boundary and cascade every
            // level whose slot boundary we just crossed.
            let next_era = (self.current_tick | SLOT_MASK) + 1;
            self.current_tick = next_era;
            for level in 1..LEVELS {
                if next_era & ((1u64 << (BITS * level as u32)) - 1) != 0 {
                    break;
                }
                let slot = ((next_era >> (BITS * level as u32)) & SLOT_MASK) as usize;
                if self.occupied[level][slot / 64] & (1u64 << (slot % 64)) != 0 {
                    self.stats.cascades += 1;
                    self.drain_slot(level, slot);
                }
            }
            if next_era & (HORIZON_TICKS - 1) == 0 {
                // The wheel's range rolled over; far-future entries
                // may fit now.
                self.sweep_overflow();
            }
            // Entries exactly at the boundary tick were filed in
            // level 0 slot 0 (delta < 256 at insert) — cascaded ones
            // went straight to `current` above.
            if self.occupied[0][0] & 1 != 0 {
                self.stats.slots_touched += 1;
                self.drain_slot(0, 0);
            }
            if !self.current.is_empty() {
                return;
            }
        }
    }

    /// Re-dispatch overflow entries that now fall inside the horizon.
    fn sweep_overflow(&mut self) {
        while let Some(head) = self.overflow.peek() {
            let tick = Self::tick_of(head.time);
            if tick > self.current_tick && tick - self.current_tick >= HORIZON_TICKS {
                break;
            }
            let entry = self.overflow.pop().expect("peeked entry exists");
            self.dispatch(entry);
        }
    }
}

impl<T> Default for TimingWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    const TICK_NS: u64 = 1 << TICK_SHIFT;

    fn drain(wheel: &mut TimingWheel<u32>) -> Vec<(u64, u64, u32)> {
        let mut out = Vec::new();
        while let Some((t, s, v)) = wheel.pop() {
            out.push((t.as_nanos(), s, v));
        }
        out
    }

    /// Reference order: exactly what `BinaryHeap<Scheduled>` produced.
    fn heap_order(mut items: Vec<(u64, u64, u32)>) -> Vec<(u64, u64, u32)> {
        items.sort_by_key(|&(t, s, _)| (t, s));
        items
    }

    #[test]
    fn same_tick_fifo_ordering() {
        // Several events inside one tick, pushed out of seq order:
        // pops must follow (time, seq) exactly, like the heap.
        let mut wheel = TimingWheel::new();
        let base = 100 * TICK_NS;
        let items = [
            (base + 5, 3u64, 0u32),
            (base + 5, 1, 1),
            (base, 2, 2),
            (base + 7, 0, 3),
            (base, 4, 4),
        ];
        for &(t, s, v) in &items {
            wheel.push(SimTime(t), s, v);
        }
        assert_eq!(wheel.len(), 5);
        assert_eq!(drain(&mut wheel), heap_order(items.to_vec()));
    }

    #[test]
    fn slot_zero_and_era_boundaries_cascade_correctly() {
        // Entries sitting exactly on 256-tick era boundaries (slot 0
        // of level 0) and just before/after them.
        let mut wheel = TimingWheel::new();
        let mut items = Vec::new();
        let mut seq = 0u64;
        for era in [1u64, 2, 3] {
            for offset in [-1i64, 0, 1] {
                let tick = (era * 256) as i64 + offset;
                let t = tick as u64 * TICK_NS;
                items.push((t, seq, seq as u32));
                seq += 1;
            }
        }
        for &(t, s, v) in &items {
            wheel.push(SimTime(t), s, v);
        }
        assert_eq!(drain(&mut wheel), heap_order(items));
    }

    #[test]
    fn exact_horizon_goes_to_overflow_and_comes_back() {
        let mut wheel = TimingWheel::new();
        // delta == HORIZON_TICKS must overflow; one tick less fits in
        // the top level.
        let inside = (HORIZON_TICKS - 1) * TICK_NS;
        let at_horizon = HORIZON_TICKS * TICK_NS;
        wheel.push(SimTime(at_horizon), 0, 0);
        wheel.push(SimTime(inside), 1, 1);
        assert_eq!(wheel.stats().overflow_events, 1);
        assert_eq!(drain(&mut wheel), vec![(inside, 1, 1), (at_horizon, 0, 0)]);
    }

    #[test]
    fn far_future_overflow_pops_in_order() {
        let mut wheel = TimingWheel::new();
        let far = 3 * HORIZON_TICKS * TICK_NS + 12_345;
        let farther = 7 * HORIZON_TICKS * TICK_NS;
        let near = 2 * TICK_NS;
        wheel.push(SimTime(farther), 0, 0);
        wheel.push(SimTime(far), 1, 1);
        wheel.push(SimTime(near), 2, 2);
        assert_eq!(wheel.stats().overflow_events, 2);
        assert_eq!(
            drain(&mut wheel),
            vec![(near, 2, 2), (far, 1, 1), (farther, 0, 0)]
        );
        assert!(wheel.is_empty());
    }

    #[test]
    fn double_insert_at_the_horizon_boundary_keeps_heap_order() {
        // Two events beyond the 4-level horizon at the *same* instant,
        // landing exactly on the horizon-aligned tick boundary. Both
        // take the overflow heap; the (time, seq) tie must break the
        // same way the reference heap breaks it, on both paths that
        // bring overflow entries back:
        //
        // 1. The empty-wheel jump (`advance` with all levels empty).
        let boundary = HORIZON_TICKS * TICK_NS;
        for flip in [false, true] {
            let mut wheel = TimingWheel::new();
            let mut items = vec![(boundary, 0u64, 0u32), (boundary, 1, 1)];
            if flip {
                items.reverse();
            }
            for &(t, s, v) in &items {
                wheel.push(SimTime(t), s, v);
            }
            assert_eq!(wheel.stats().overflow_events, 2);
            assert_eq!(drain(&mut wheel), heap_order(items), "flip = {flip}");
        }

        // 2. The era-rollover sweep: the wheel walks eras (levels
        //    still occupied) across a horizon-aligned boundary and
        //    sweeps the pair back in mid-walk.
        let mut wheel = TimingWheel::new();
        let mut items = Vec::new();
        // Seed entry moves current_tick off zero so later pushes can
        // file wheel entries beyond the first horizon multiple.
        items.push((300 * TICK_NS, 0u64, 0u32));
        wheel.push(SimTime(300 * TICK_NS), 0, 0);
        assert_eq!(wheel.pop(), Some((SimTime(300 * TICK_NS), 0, 0)));
        // A wheel-resident entry past the boundary keeps the levels
        // occupied, forcing the walk (not the jump) across it...
        let in_wheel = (HORIZON_TICKS + 100) * TICK_NS;
        // ...while the duplicate-time pair sits exactly one horizon
        // away from current_tick: delta == HORIZON_TICKS overflows.
        let pair_at = (HORIZON_TICKS + 300) * TICK_NS;
        let tail = [(in_wheel, 1u64, 1u32), (pair_at, 2, 2), (pair_at, 3, 3)];
        for &(t, s, v) in &tail {
            wheel.push(SimTime(t), s, v);
        }
        items.extend_from_slice(&tail);
        assert_eq!(wheel.stats().overflow_events, 2);
        let mut expected = heap_order(items);
        expected.remove(0); // the seed was already popped
        assert_eq!(drain(&mut wheel), expected);

        // Degenerate duplicate: the engine guarantees unique seqs, but
        // a literal (time, seq) collision at the boundary must still
        // surface both entries with the right key.
        let mut wheel = TimingWheel::new();
        wheel.push(SimTime(boundary), 7, 10u32);
        wheel.push(SimTime(boundary), 7, 11);
        let popped = drain(&mut wheel);
        assert_eq!(popped.len(), 2);
        for &(t, s, _) in &popped {
            assert_eq!((t, s), (boundary, 7));
        }
        let mut values: Vec<u32> = popped.iter().map(|&(_, _, v)| v).collect();
        values.sort_unstable();
        assert_eq!(values, vec![10, 11]);
    }

    #[test]
    fn interleaved_push_pop_preserves_heap_order() {
        // Mimic the simulator: pop one event, schedule a few more
        // relative to it, repeat. Compare against a real BinaryHeap.
        let mut wheel = TimingWheel::new();
        let mut heap: BinaryHeap<Entry<u32>> = BinaryHeap::new();
        let mut rng = SimRng::new(99);
        let mut seq = 0u64;
        fn push_both(
            wheel: &mut TimingWheel<u32>,
            heap: &mut BinaryHeap<Entry<u32>>,
            t: u64,
            seq: &mut u64,
        ) {
            let v = *seq as u32;
            wheel.push(SimTime(t), *seq, v);
            heap.push(Entry {
                time: SimTime(t),
                seq: *seq,
                value: v,
            });
            *seq += 1;
        }
        for t in [0u64, 1, TICK_NS, 5 * TICK_NS] {
            push_both(&mut wheel, &mut heap, t, &mut seq);
        }
        for _ in 0..2_000 {
            let from_wheel = wheel.pop();
            let from_heap = heap.pop().map(|e| (e.time, e.seq, e.value));
            assert_eq!(from_wheel, from_heap);
            let Some((now, _, _)) = from_wheel else {
                break;
            };
            // Schedule 0-2 follow-ups at assorted distances, from
            // sub-tick to beyond the horizon.
            for _ in 0..rng.index(3) {
                let jump = match rng.index(5) {
                    0 => rng.range_u64(0, TICK_NS),
                    1 => rng.range_u64(0, 256 * TICK_NS),
                    2 => rng.range_u64(0, 65_536 * TICK_NS),
                    3 => rng.range_u64(0, HORIZON_TICKS * TICK_NS / 8),
                    _ => HORIZON_TICKS * TICK_NS + rng.range_u64(0, TICK_NS * 1_000),
                };
                push_both(&mut wheel, &mut heap, now.as_nanos() + jump, &mut seq);
            }
        }
        assert_eq!(wheel.len(), heap.len());
        while let Some(e) = heap.pop() {
            assert_eq!(wheel.pop(), Some((e.time, e.seq, e.value)));
        }
        assert!(wheel.pop().is_none());
    }

    #[test]
    fn next_time_matches_pop_and_len_tracks() {
        let mut wheel = TimingWheel::new();
        assert_eq!(wheel.next_time(), None);
        wheel.push(SimTime(500 * TICK_NS), 0, 7u32);
        wheel.push(SimTime(3), 1, 8);
        assert_eq!(wheel.len(), 2);
        assert_eq!(wheel.next_time(), Some(SimTime(3)));
        assert_eq!(wheel.pop(), Some((SimTime(3), 1, 8)));
        assert_eq!(wheel.next_time(), Some(SimTime(500 * TICK_NS)));
        assert_eq!(wheel.len(), 1);
        assert!(wheel.stats().slots_touched > 0);
    }
}
