//! # turb-netsim — a deterministic discrete-event network simulator
//!
//! The substrate standing in for the 2002 Internet of the paper's
//! measurement study. Sans-IO and deterministic: a run is a pure
//! function of (topology, applications, seed), so every experiment in
//! the workspace is bit-reproducible — including under the optional
//! sharded engine, which partitions one simulation across worker
//! threads behind conservative lookahead barriers without changing a
//! single result byte.
//!
//! * [`time`] — nanosecond [`SimTime`]/[`SimDuration`] clock.
//! * [`rng`] — embedded xoshiro256** [`SimRng`] with forkable
//!   sub-streams.
//! * [`link`] — simplex links with serialisation delay, propagation,
//!   and drop-tail queues; duplex = a pair.
//! * [`node`] — hosts (reassembly, UDP port table, ICMP listeners) and
//!   routers (TTL, forwarding, ICMP time-exceeded).
//! * [`fault`] — Bernoulli / Gilbert-Elliott loss and jitter injection.
//! * [`fluid`] — max-min fair fluid engine: background flows modelled
//!   as rates over link routes, recomputed only at demand breakpoints;
//!   the packet path sees them as reduced residual link capacity.
//! * [`sim`] — the engine: event queue, [`Application`] trait,
//!   [`Ctx`] capability handle, sniffer taps.
//! * [`wheel`] — deterministic hierarchical timing wheel backing the
//!   default event queue (`--scheduler heap` swaps the old heap in).
//! * [`shard`] — conservative parallel engine: the topology is
//!   partitioned into per-thread domains, lookahead = the minimum
//!   propagation over cut links, and cross-domain packets transit
//!   through canonical-order exchange queues at barriers. Selected
//!   with [`ShardKind::Sharded`]; byte-identical to sequential.
//! * [`topology`] — the paper's client-to-six-sites scenario with
//!   hop-count and RTT distributions calibrated to Figures 1–2, plus
//!   the replicated-client [`topology::ScaleScenario`] used to bench
//!   the shard engine on 10⁴–10⁵ pending events.
//! * [`tools`] — `ping` and `tracert` as simulated applications.
//! * [`tcp`] — a sans-IO Reno TCP (handshake, retransmission, fast
//!   recovery) for the paper's §VI TCP-friendliness follow-up.
//! * [`fleet`] — session-population multiplexing over the scale ring:
//!   one driver app per group walks a table of compact
//!   [`fleet::SessionSpec`] rows, so 10⁵–10⁶ churning sessions cost a
//!   few dozen bytes each instead of a host and an app.
//!
//! ```
//! use turb_netsim::prelude::*;
//!
//! let mut sim = Simulation::new(7);
//! let mut rng = SimRng::new(7);
//! let scenario = InternetScenario::build(&mut sim, &mut rng, &ScenarioConfig::default());
//! let report = tools::spawn_ping(
//!     &mut sim,
//!     scenario.client,
//!     scenario.sites[0].server_addr,
//!     4,
//!     SimDuration::from_secs(1),
//!     SimDuration::ZERO,
//!     &mut rng,
//! );
//! sim.run_until(SimTime::ZERO + SimDuration::from_secs(10));
//! assert_eq!(report.lock().unwrap().received, 4);
//! ```

pub mod fault;
pub mod fleet;
pub mod fluid;
pub mod link;
pub mod node;
pub mod red;
pub mod rng;
pub mod shard;
pub mod sim;
pub mod tcp;
pub mod tcp_apps;
pub mod time;
pub mod tools;
pub mod topology;
pub mod wheel;

pub use fault::{FaultInjector, JitterModel, LossModel};
pub use fleet::{FleetLedger, FleetScenario, SessionSpec, FLEET_WINDOW_NS};
pub use fluid::{EngineKind, FlowClass, FluidDiag, FluidFlow, RateSchedule};
pub use link::{Link, LinkConfig, LinkId, LinkStats, NodeId};
pub use node::{AppId, Node, NodeKind, NodeStats};
pub use red::RedQueue;
pub use rng::SimRng;
pub use shard::{ShardDiag, ShardDomainStats, ShardKind};
pub use sim::{
    Application, Ctx, Direction, SchedulerKind, SimCore, SimStats, Simulation, Tap, TapEvent,
};
pub use time::{SimDuration, SimTime};
// Lineage vocabulary re-exported so apps built on `Ctx` don't need a
// direct `turb-obs` edge just to describe their packets.
pub use topology::{InternetScenario, ScenarioConfig, SitePath};
pub use turb_obs::lineage::{DropCause, LineageDump, PacketizeMeta, SpanOutcome, Stage};
pub use wheel::{SchedStats, TimingWheel};

/// Convenient glob import for simulation consumers.
pub mod prelude {
    pub use crate::fault::{FaultInjector, JitterModel, LossModel};
    pub use crate::fluid::{EngineKind, FlowClass, FluidDiag, FluidFlow, RateSchedule};
    pub use crate::link::{LinkConfig, LinkId, NodeId};
    pub use crate::node::AppId;
    pub use crate::rng::SimRng;
    pub use crate::shard::{ShardDiag, ShardDomainStats, ShardKind};
    pub use crate::sim::{Application, Ctx, Direction, SchedulerKind, Simulation, TapEvent};
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::tools;
    pub use crate::topology::{InternetScenario, ScenarioConfig};
    pub use turb_obs::lineage::PacketizeMeta;
}
