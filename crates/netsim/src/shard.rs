//! Conservative parallel discrete-event execution: one simulation
//! sharded across cores.
//!
//! [`ShardedEngine`] partitions a [`Simulation`]'s topology into
//! *domains* — disjoint sets of nodes, each with its own event queue,
//! clock, and observer set — and advances them on one worker thread
//! per domain. Correctness rests on the classic conservative-lookahead
//! argument (Chandy/Misra/Bryant): the only way one domain can affect
//! another is a packet crossing a *cut link*, and a packet put on a
//! cut link at time `t` cannot arrive before `t + L`, where `L` is the
//! minimum propagation delay over all cut links. So if every domain's
//! next pending event is at or after `t_min`, all domains may safely
//! process events in the window `[t_min, t_min + L)` without hearing
//! from each other; cross-domain packets emitted during the window are
//! exchanged at the barrier that ends it, always landing at or beyond
//! the next window's start.
//!
//! Determinism (the reason this engine can exist at all — see
//! DESIGN.md §5): domains only share state at barriers, transits are
//! routed in canonical source-domain-major order, per-entity RNG
//! streams make random draws a function of each node/link's own
//! traffic, and per-domain observer output is merged canonically
//! afterwards. `tests/shard_equivalence.rs` holds the engine to
//! byte-identical reports, metrics, traces, lineage, and series
//! against the sequential engine at every shard count.

use crate::link::{Link, LinkId, NodeId};
use crate::node::{AppId, Node};
use crate::sim::{
    collect_link_metrics, collect_node_metrics, collect_sim_metrics, AppSlot, Application,
    Delivery, Event, EventQueue, LineageState, SchedulerKind, SessionState, SimCore, SimStats,
    Simulation,
};
use crate::time::SimTime;
use crate::wheel::SchedStats;
use std::sync::{Arc, Condvar, Mutex};
use turb_obs::lineage::{LineageDump, LineageRecorder};
use turb_obs::timeseries::TimeSeriesRecorder;
use turb_obs::{merged_trace_jsonl, MetricsRegistry, ProgressMeter, SeriesDump, SPAN_DOMAIN_SHIFT};

/// How a [`Simulation`]'s `run_*` calls execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardKind {
    /// One event loop on the calling thread; the default.
    #[default]
    Sequential,
    /// Partition the topology into this many domains and run them on
    /// one worker thread each, synchronised by lookahead barriers.
    /// `Sharded(1)` exercises the full barrier engine with a single
    /// domain — useful for isolating engine overhead.
    Sharded(u16),
}

impl ShardKind {
    /// Number of domains this mode runs (1 for sequential).
    pub fn domains(self) -> usize {
        match self {
            ShardKind::Sequential => 1,
            ShardKind::Sharded(n) => n as usize,
        }
    }
}

/// A packet in flight between domains: the arrival the transmitting
/// domain would have scheduled locally, diverted at the cut.
pub(crate) struct Transit {
    /// Arrival instant at the far end of the link.
    pub(crate) time: SimTime,
    /// The cut link the packet travelled.
    pub(crate) link: LinkId,
    /// The packet itself.
    pub(crate) packet: turb_wire::ipv4::Ipv4Packet,
}

/// Per-domain sharding context, installed into each domain's
/// [`SimCore`] so the transmit path can divert cross-domain
/// deliveries into the outbox instead of the local event queue.
pub(crate) struct ShardCtx {
    /// Which domain this core is.
    pub(crate) domain: u16,
    /// Global node id → owning domain.
    pub(crate) node_domain: Arc<Vec<u16>>,
    /// Cross-domain packets emitted during the current window, in
    /// emission order; drained at the barrier.
    pub(crate) outbox: Vec<Transit>,
}

/// Engine diagnostics for one domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardDomainStats {
    /// Domain index.
    pub domain: u16,
    /// Nodes assigned to this domain.
    pub nodes: u32,
    /// Events this domain's loop processed.
    pub events_processed: u64,
    /// High-water mark of this domain's event queue.
    pub max_queue_depth: u64,
    /// This domain's scheduler-internal diagnostics.
    pub sched: SchedStats,
}

/// Diagnostics of a sharded run: how the partition ran, not what the
/// simulated network did. Like [`SchedStats`], these live *outside*
/// the byte-identity set (they vary with shard count by nature).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardDiag {
    /// Number of domains.
    pub shards: u16,
    /// Conservative lookahead: minimum propagation over cut links
    /// (`u64::MAX` when no link is cut).
    pub lookahead_ns: u64,
    /// Lookahead windows executed (= barrier synchronisations).
    pub barriers: u64,
    /// Packets exchanged across domains over the whole run.
    pub transits: u64,
    /// Largest single-barrier batch routed into one domain.
    pub max_exchange_depth: u64,
    /// Times an exchange buffer outgrew its pre-sized capacity. Stays
    /// zero in steady state — the buffers ping-pong by `mem::swap` and
    /// are never shrunk — and `turbulence bench` micro-asserts that.
    pub exchange_reallocs: u64,
    /// Per-domain breakdown.
    pub per_domain: Vec<ShardDomainStats>,
}

/// Pre-sized capacity of every exchange buffer (inboxes, outboxes,
/// routing stage). Generously above any per-window cross-domain batch
/// the workspace scenarios produce, so steady-state exchange does no
/// allocation.
const EXCHANGE_CAP: usize = 1024;

/// Window sentinel telling workers to drain their inbox and exit.
const STOP: u64 = u64::MAX;

/// Mail slot between the coordinator and one domain's worker.
struct Mailbox {
    /// Transits routed to this domain, scheduled by the worker at the
    /// start of the next window.
    inbox: Vec<Transit>,
    /// The domain's published outbox, swapped out by the worker at the
    /// end of each window and drained by the coordinator's router.
    outbox: Vec<Transit>,
    /// The domain's next pending event time after its last window.
    next_time: Option<u64>,
    /// Events this domain has processed so far, refreshed at each
    /// publish. Read only by the coordinator's heartbeat — diagnostics
    /// outside the byte-identity set.
    events: u64,
}

/// Barrier state shared by the coordinator and all workers.
struct Coord {
    state: Mutex<CoordState>,
    /// Coordinator → workers: a new generation was published.
    to_workers: Condvar,
    /// Workers → coordinator: a domain finished the generation.
    to_coord: Condvar,
}

struct CoordState {
    /// Generation counter; workers run one window per bump.
    gen: u64,
    /// End (exclusive) of the current window, or [`STOP`].
    window_end: u64,
    /// Domains done with the current generation (excluding domain 0,
    /// which the coordinator runs inline).
    done: usize,
}

/// The conservative parallel engine: one [`Simulation`] per domain
/// plus the exchange machinery. Owned by the outer [`Simulation`] once
/// it partitions; see [`Simulation::set_shards`].
pub struct ShardedEngine {
    /// One inner simulation per domain (each `ShardKind::Sequential`,
    /// so the outer dispatch never recurses).
    domains: Vec<Simulation>,
    /// Global node id → owning domain.
    node_domain: Arc<Vec<u16>>,
    /// Global link id → domain owning the live copy (the transmitting
    /// node's domain: that's where `transmit` mutates stats and RNG).
    link_src_domain: Vec<u16>,
    /// Global link id → domain of the receiving node.
    link_dst_domain: Vec<u16>,
    /// Conservative lookahead in nanoseconds.
    lookahead: u64,
    /// Global clock: `limit` after a forced run, else the latest
    /// domain clock.
    now: SimTime,
    mailboxes: Vec<Mutex<Mailbox>>,
    /// Coordinator-side routing stage, one slot per destination
    /// domain; persists across runs so routing does no allocation.
    staging: Vec<Vec<Transit>>,
    /// Remembered buffer capacities, for realloc detection.
    buffer_caps: Vec<usize>,
    barriers: u64,
    transits: u64,
    max_exchange_depth: u64,
    exchange_reallocs: u64,
}

/// Union-find with path halving.
fn uf_find(parent: &mut [usize], mut x: usize) -> usize {
    while parent[x] != x {
        parent[x] = parent[parent[x]];
        x = parent[x];
    }
    x
}

/// Partition nodes into `n` domains by greedily contracting the
/// cheapest cut first: repeatedly merge the two components joined by
/// the cross-component link with the smallest `(propagation, combined
/// size, link id)` key until `n` components remain. Minimum-latency
/// links vanish into domains (they would otherwise bound the
/// lookahead), and the size term keeps domains balanced. Returns the
/// node → domain map, with domains numbered by their smallest member
/// node id so the assignment is independent of merge order.
fn assign_domains(links: &[Link], node_count: usize, n: usize) -> Vec<u16> {
    assert!(n >= 1, "a sharded simulation needs at least one domain");
    assert!(
        n <= node_count,
        "cannot split {node_count} nodes into {n} shard domains; \
         --shards must not exceed the node count"
    );
    let mut parent: Vec<usize> = (0..node_count).collect();
    let mut size = vec![1usize; node_count];
    let mut components = node_count;
    while components > n {
        // The cheapest cross-component link, by (propagation,
        // combined component size, link id).
        let mut best: Option<((u64, usize, usize), usize, usize)> = None;
        for link in links {
            let a = uf_find(&mut parent, link.from.0);
            let b = uf_find(&mut parent, link.to.0);
            if a == b {
                continue;
            }
            let key = (link.config.propagation.0, size[a] + size[b], link.id.0);
            if best.as_ref().is_none_or(|(k, _, _)| key < *k) {
                best = Some((key, a, b));
            }
        }
        let Some((_, a, b)) = best else {
            break; // disconnected topology: no cross-component links left
        };
        let (root, child) = if size[a] >= size[b] { (a, b) } else { (b, a) };
        parent[child] = root;
        size[root] += size[child];
        components -= 1;
    }
    // Disconnected leftovers: merge the smallest components first
    // (ties by smallest member id) until n remain.
    while components > n {
        let mut roots: Vec<usize> = (0..node_count)
            .filter(|&i| uf_find(&mut parent, i) == i)
            .collect();
        roots.sort_by_key(|&r| (size[r], r));
        let (a, b) = (roots[0], roots[1]);
        parent[a] = b;
        size[b] += size[a];
        components -= 1;
    }
    // Renumber components as domains ordered by smallest member node.
    let mut root_domain = vec![u16::MAX; node_count];
    let mut next = 0u16;
    let mut node_domain = vec![0u16; node_count];
    for (i, slot) in node_domain.iter_mut().enumerate() {
        let r = uf_find(&mut parent, i);
        if root_domain[r] == u16::MAX {
            root_domain[r] = next;
            next += 1;
        }
        *slot = root_domain[r];
    }
    debug_assert_eq!(next as usize, components);
    node_domain
}

/// Schedule everything in this domain's inbox. No sort: the event
/// queue orders by time, and for equal arrival times the inbox's
/// source-domain-major order is the canonical tie-break.
fn drain_inbox(sim: &mut Simulation, mailbox: &Mutex<Mailbox>) {
    let mut mb = mailbox.lock().unwrap();
    for t in mb.inbox.drain(..) {
        sim.core.schedule(
            t.time,
            Event::Arrival {
                link: t.link,
                packet: t.packet,
            },
        );
    }
}

/// Publish a domain's window results: swap the freshly filled outbox
/// into the mailbox (buffer ping-pong — no allocation) and expose the
/// next pending event time.
fn publish(sim: &mut Simulation, mailbox: &Mutex<Mailbox>) {
    let mut mb = mailbox.lock().unwrap();
    let ctx = sim
        .core
        .shard
        .as_deref_mut()
        .expect("domain core has a shard context");
    std::mem::swap(&mut mb.outbox, &mut ctx.outbox);
    mb.next_time = sim.core.queue.next_time().map(SimTime::as_nanos);
    mb.events = sim.core.stats.events_processed;
}

/// One domain's worker loop: wait for a window, absorb the inbox, run
/// the window, publish, repeat — until the [`STOP`] sentinel.
fn worker(sim: &mut Simulation, mailbox: &Mutex<Mailbox>, coord: &Coord) {
    let mut seen_gen = 0u64;
    loop {
        let window_end = {
            let mut st = coord.state.lock().unwrap();
            while st.gen == seen_gen {
                st = coord.to_workers.wait(st).unwrap();
            }
            seen_gen = st.gen;
            st.window_end
        };
        // Inbox first, in both cases: on STOP the drained arrivals lie
        // beyond the run limit and must survive into the next run call.
        drain_inbox(sim, mailbox);
        let stopping = window_end == STOP;
        if !stopping {
            sim.run_window(window_end);
            publish(sim, mailbox);
        }
        let mut st = coord.state.lock().unwrap();
        st.done += 1;
        coord.to_coord.notify_one();
        if stopping {
            return;
        }
    }
}

impl ShardedEngine {
    /// Split a fully built simulation into `n` domains. Called lazily
    /// by the outer [`Simulation`] on its first `run_*` call, so all
    /// topology, application, and observer setup is already in place.
    pub(crate) fn partition(
        mut core: SimCore,
        apps: Vec<AppSlot>,
        deliveries: Vec<Delivery>,
        n: usize,
    ) -> ShardedEngine {
        let node_count = core.nodes.len();
        let node_domain = Arc::new(assign_domains(&core.links, node_count, n));
        let n = *node_domain.iter().max().unwrap_or(&0) as usize + 1;
        debug_assert!(n >= 1);

        let link_src_domain: Vec<u16> = core.links.iter().map(|l| node_domain[l.from.0]).collect();
        let link_dst_domain: Vec<u16> = core.links.iter().map(|l| node_domain[l.to.0]).collect();

        // Conservative lookahead: the minimum propagation over cut
        // links. A zero-propagation cut would make windows empty.
        let mut lookahead = u64::MAX;
        for link in &core.links {
            if node_domain[link.from.0] != node_domain[link.to.0] {
                assert!(
                    link.config.propagation.0 > 0,
                    "cut link {} has zero propagation delay: no conservative \
                     lookahead exists for this partition",
                    link.id.0
                );
                lookahead = lookahead.min(link.config.propagation.0);
            }
        }

        let scheduler = core.queue.kind();
        let now = core.now;

        // Per-domain observers. Domain 0 inherits the originals (with
        // any pre-partition recordings); the rest get empty recorders
        // sharing the interned symbol table, with lineage span ids
        // namespaced by domain (see `SPAN_DOMAIN_SHIFT`).
        let obs_list: Vec<turb_obs::Obs> = (1..n).map(|_| core.obs.shard_clone()).collect();
        let lineage_list: Vec<Option<Box<LineageState>>> = match core.lineage.as_deref() {
            None => (1..n).map(|_| None).collect(),
            Some(orig) => (1..n)
                .map(|d| {
                    let mut rec = LineageRecorder::with_capacity(orig.rec.capacity());
                    rec.set_span_base((d as u64) << SPAN_DOMAIN_SHIFT);
                    Some(Box::new(LineageState {
                        rec,
                        pending_meta: None,
                        current_span: None,
                    }))
                })
                .collect(),
        };
        // Session state shares one recorder across all domains (the
        // `Arc<Mutex<..>>` ledger idiom): per-session updates commute,
        // so one dense table serves every shard count identically.
        let session_shared = core
            .sessions
            .as_deref()
            .map(|s| (Arc::clone(&s.shared), s.sampler));
        let ts_list: Vec<Option<Box<TimeSeriesRecorder>>> = match core.timeseries.as_deref() {
            None => (1..n).map(|_| None).collect(),
            Some(orig) => (1..n)
                .map(|_| {
                    Some(Box::new(TimeSeriesRecorder::with_capacity(
                        orig.window_ns(),
                        orig.capacity(),
                    )))
                })
                .collect(),
        };

        // Dismember the core. Nodes, links, taps, and the original
        // observers move to their owning domains; every domain keeps
        // full-length node/link/app vectors (placeholders in foreign
        // slots) so global ids index directly everywhere.
        let mut nodes: Vec<Option<Node>> = core.nodes.into_iter().map(Some).collect();
        let mut links: Vec<Option<Link>> = core.links.into_iter().map(Some).collect();
        let mut app_slots: Vec<(NodeId, Option<Box<dyn Application>>)> =
            apps.into_iter().map(|s| (s.node, s.app)).collect();
        let mut taps_by_domain: Vec<Vec<(NodeId, crate::sim::Tap)>> =
            (0..n).map(|_| Vec::new()).collect();
        for (node, tap) in core.taps {
            taps_by_domain[node_domain[node.0] as usize].push((node, tap));
        }

        // Lightweight per-entity metadata for placeholder construction.
        let node_meta: Vec<(
            String,
            std::net::Ipv4Addr,
            crate::node::NodeKind,
            turb_obs::SymbolId,
        )> = nodes
            .iter()
            .map(|node| {
                let node = node.as_ref().unwrap();
                (node.name.clone(), node.addr, node.kind, node.comp)
            })
            .collect();
        let link_meta: Vec<(NodeId, NodeId, crate::link::LinkConfig, turb_obs::SymbolId)> = links
            .iter()
            .map(|link| {
                let link = link.as_ref().unwrap();
                (link.from, link.to, link.config, link.comp)
            })
            .collect();

        let mut obs_iter = obs_list.into_iter();
        let mut lineage_iter = lineage_list.into_iter();
        let mut ts_iter = ts_list.into_iter();
        let mut domains: Vec<Simulation> = (0..n)
            .map(|d| {
                let domain_nodes: Vec<Node> = (0..node_count)
                    .map(|i| {
                        if node_domain[i] as usize == d {
                            nodes[i].take().unwrap()
                        } else {
                            let (name, addr, kind, comp) = &node_meta[i];
                            let mut ph = Node::new(NodeId(i), name.clone(), *addr, *kind);
                            ph.comp = *comp;
                            ph
                        }
                    })
                    .collect();
                let domain_links: Vec<Link> = (0..link_meta.len())
                    .map(|i| {
                        if link_src_domain[i] as usize == d {
                            links[i].take().unwrap()
                        } else {
                            // The receiving domain's arrival path only
                            // reads `to` (and observers read `comp`);
                            // stats and RNG live in the sender's copy.
                            let (from, to, config, comp) = link_meta[i];
                            let mut ph = Link::new(LinkId(i), from, to, config);
                            ph.comp = comp;
                            ph
                        }
                    })
                    .collect();
                let domain_apps: Vec<AppSlot> = app_slots
                    .iter_mut()
                    .map(|(node, app)| AppSlot {
                        node: *node,
                        app: if node_domain[node.0] as usize == d {
                            app.take()
                        } else {
                            None
                        },
                    })
                    .collect();
                Simulation {
                    core: SimCore {
                        now,
                        queue: EventQueue::with_capacity(scheduler, 1024),
                        seq: 0,
                        nodes: domain_nodes,
                        links: domain_links,
                        taps: std::mem::take(&mut taps_by_domain[d]),
                        // Never drawn mid-run: every mid-run draw goes
                        // through a per-node or per-link stream.
                        rng: core.rng.clone(),
                        stats: if d == 0 {
                            core.stats
                        } else {
                            SimStats::default()
                        },
                        obs: if d == 0 {
                            std::mem::take(&mut core.obs)
                        } else {
                            obs_iter.next().unwrap()
                        },
                        lineage: if d == 0 {
                            core.lineage.take()
                        } else {
                            lineage_iter.next().unwrap()
                        },
                        sessions: if d == 0 {
                            core.sessions.take()
                        } else {
                            session_shared.as_ref().map(|(shared, sampler)| {
                                Box::new(SessionState {
                                    shared: Arc::clone(shared),
                                    pending: None,
                                    sampler: *sampler,
                                })
                            })
                        },
                        timeseries: if d == 0 {
                            core.timeseries.take()
                        } else {
                            ts_iter.next().unwrap()
                        },
                        shard: Some(Box::new(ShardCtx {
                            domain: d as u16,
                            node_domain: Arc::clone(&node_domain),
                            outbox: Vec::with_capacity(EXCHANGE_CAP),
                        })),
                        fluid_applied: if d == 0 { core.fluid_applied } else { 0 },
                    },
                    apps: domain_apps,
                    deliveries: if d == 0 {
                        deliveries.clone_capacity()
                    } else {
                        Vec::new()
                    },
                    shards: ShardKind::Sequential,
                    sharded: None,
                    // The outer simulation sealed the fluid population
                    // before partitioning; domains only apply the
                    // already-scheduled updates.
                    fluid_flows: Vec::new(),
                    fluid_sealed: true,
                    fluid_diag: crate::fluid::FluidDiag::default(),
                    progress: None,
                }
            })
            .collect();

        // Redistribute pending events (AppStarts from setup, possibly
        // timers) to their owning domains, preserving (time, seq)
        // order: pops come out in canonical order and each domain
        // re-sequences locally. Raw queue pushes — the events were
        // already counted in `events_scheduled` when first scheduled.
        let mut queue = core.queue;
        while let Some((time, event)) = queue.pop() {
            let owner = match &event {
                Event::Arrival { link, .. } => link_dst_domain[link.0],
                Event::AppStart(app) | Event::Timer { app, .. } => {
                    node_domain[domains[0].apps[app.0].node.0]
                }
                // Fluid shares are read by `transmit`, which runs in
                // the domain owning the link's live copy (the
                // transmitting node's domain).
                Event::FluidUpdate { link, .. } => link_src_domain[link.0],
            } as usize;
            let domain_core = &mut domains[owner].core;
            let seq = domain_core.seq;
            domain_core.seq += 1;
            domain_core.queue.push(time, seq, event);
        }

        let mailboxes = (0..n)
            .map(|_| {
                Mutex::new(Mailbox {
                    inbox: Vec::with_capacity(EXCHANGE_CAP),
                    outbox: Vec::with_capacity(EXCHANGE_CAP),
                    next_time: None,
                    events: 0,
                })
            })
            .collect();
        let staging: Vec<Vec<Transit>> = (0..n).map(|_| Vec::with_capacity(EXCHANGE_CAP)).collect();
        // inbox, outbox, staging, per-domain shard outbox: 4 buffers
        // per domain, all pre-sized.
        let buffer_caps = vec![EXCHANGE_CAP; n * 4];

        ShardedEngine {
            domains,
            node_domain,
            link_src_domain,
            link_dst_domain,
            lookahead,
            now,
            mailboxes,
            staging,
            buffer_caps,
            barriers: 0,
            transits: 0,
            max_exchange_depth: 0,
            exchange_reallocs: 0,
        }
    }

    /// Run all domains to `limit`. With `force_advance` every clock is
    /// advanced to `limit` afterwards (the `run_until` contract);
    /// without, clocks rest on their last processed event
    /// (`run_to_idle`).
    pub(crate) fn run(
        &mut self,
        limit: SimTime,
        force_advance: bool,
        mut progress: Option<&mut ProgressMeter>,
    ) -> SimTime {
        // Windows are end-exclusive; events exactly at `limit` are in.
        let end_ns = limit.as_nanos().saturating_add(1);
        let n = self.domains.len();

        // Publish every domain's next pending time; workers keep these
        // fresh from here on.
        for (sim, mailbox) in self.domains.iter_mut().zip(&self.mailboxes) {
            mailbox.lock().unwrap().next_time = sim.core.queue.next_time().map(SimTime::as_nanos);
        }

        let coord = Coord {
            state: Mutex::new(CoordState {
                gen: 0,
                window_end: 0,
                done: 0,
            }),
            to_workers: Condvar::new(),
            to_coord: Condvar::new(),
        };
        let mut barriers = 0u64;
        let mut transits = 0u64;
        let mut max_depth = self.max_exchange_depth;

        {
            let (d0, rest) = self.domains.split_first_mut().unwrap();
            let mailboxes = &self.mailboxes;
            let (mb0, mb_rest) = mailboxes.split_first().unwrap();
            let staging = &mut self.staging;
            let link_dst_domain = &self.link_dst_domain;
            let lookahead = self.lookahead;
            let coord = &coord;
            std::thread::scope(|scope| {
                for (sim, mailbox) in rest.iter_mut().zip(mb_rest.iter()) {
                    scope.spawn(move || worker(sim, mailbox, coord));
                }
                // Coordinator: route, open a window, run domain 0
                // inline, wait for the others.
                loop {
                    let mut t_min: Option<u64> = None;
                    let mut events_total = 0u64;
                    for mailbox in mailboxes.iter() {
                        let mut mb = mailbox.lock().unwrap();
                        events_total += mb.events;
                        if let Some(t) = mb.next_time {
                            t_min = Some(t_min.map_or(t, |m: u64| m.min(t)));
                        }
                        for t in mb.outbox.drain(..) {
                            let arrival = t.time.as_nanos();
                            t_min = Some(t_min.map_or(arrival, |m: u64| m.min(arrival)));
                            staging[link_dst_domain[t.link.0] as usize].push(t);
                        }
                    }
                    // Heartbeat at the barrier: the coordinator already
                    // holds all the state (frontier time, event totals)
                    // and the meter rate-limits itself on wall clock.
                    if let (Some(p), Some(t)) = (progress.as_deref_mut(), t_min) {
                        p.tick(t, events_total);
                    }
                    for (dst, stage) in staging.iter_mut().enumerate() {
                        if stage.is_empty() {
                            continue;
                        }
                        transits += stage.len() as u64;
                        max_depth = max_depth.max(stage.len() as u64);
                        let mut mb = mailboxes[dst].lock().unwrap();
                        mb.inbox.append(stage);
                    }
                    let stop = t_min.is_none_or(|t| t >= end_ns);
                    let window_end = if stop {
                        STOP
                    } else {
                        t_min.unwrap().saturating_add(lookahead).min(end_ns)
                    };
                    {
                        let mut st = coord.state.lock().unwrap();
                        st.done = 0;
                        st.window_end = window_end;
                        st.gen += 1;
                    }
                    coord.to_workers.notify_all();
                    drain_inbox(d0, mb0);
                    if !stop {
                        d0.run_window(window_end);
                        publish(d0, mb0);
                        barriers += 1;
                    }
                    {
                        let mut st = coord.state.lock().unwrap();
                        while st.done < n - 1 {
                            st = coord.to_coord.wait(st).unwrap();
                        }
                    }
                    if stop {
                        break;
                    }
                }
            });
        }

        self.barriers += barriers;
        self.transits += transits;
        self.max_exchange_depth = max_depth;
        self.note_reallocs();

        if force_advance {
            for sim in &mut self.domains {
                if sim.core.now < limit {
                    sim.core.now = limit;
                }
            }
            if self.now < limit {
                self.now = limit;
            }
        } else {
            let latest = self
                .domains
                .iter()
                .map(|sim| sim.core.now)
                .max()
                .unwrap_or(self.now);
            self.now = self.now.max(latest);
        }
        self.now
    }

    /// Record exchange-buffer capacity growth since the last run (or
    /// since partition). Steady state keeps this at zero: the buffers
    /// are pre-sized and ping-ponged, never reallocated.
    fn note_reallocs(&mut self) {
        let n = self.domains.len();
        for d in 0..n {
            let mb = self.mailboxes[d].lock().unwrap();
            let shard_out = self.domains[d]
                .core
                .shard
                .as_deref()
                .map_or(0, |ctx| ctx.outbox.capacity());
            for (slot, cap) in [
                (d * 4, mb.inbox.capacity()),
                (d * 4 + 1, mb.outbox.capacity()),
                (d * 4 + 2, self.staging[d].capacity()),
                (d * 4 + 3, shard_out),
            ] {
                if cap > self.buffer_caps[slot] {
                    self.exchange_reallocs += 1;
                    self.buffer_caps[slot] = cap;
                }
            }
        }
    }

    /// Global clock (see [`ShardedEngine::run`]).
    pub(crate) fn now(&self) -> SimTime {
        self.now
    }

    fn owner_of_node(&self, id: NodeId) -> &Simulation {
        &self.domains[self.node_domain[id.0] as usize]
    }

    /// The owning domain's live copy of a node.
    pub(crate) fn node(&self, id: NodeId) -> &Node {
        &self.owner_of_node(id).core.nodes[id.0]
    }

    /// The transmitting domain's live copy of a link.
    pub(crate) fn link(&self, id: LinkId) -> &Link {
        &self.domains[self.link_src_domain[id.0] as usize].core.links[id.0]
    }

    pub(crate) fn node_count(&self) -> usize {
        self.domains[0].core.nodes.len()
    }

    pub(crate) fn link_count(&self) -> usize {
        self.domains[0].core.links.len()
    }

    /// Add an application mid-run: the live slot goes to the owning
    /// domain, every other domain gets a placeholder so [`AppId`]s
    /// stay globally consistent.
    pub(crate) fn add_app(
        &mut self,
        node: NodeId,
        app: Box<dyn Application>,
        udp_port: Option<u16>,
        listen_icmp: bool,
    ) -> AppId {
        let id = AppId(self.domains[0].apps.len());
        let owner = self.node_domain[node.0] as usize;
        let mut app = Some(app);
        for (d, sim) in self.domains.iter_mut().enumerate() {
            sim.apps.push(AppSlot {
                node,
                app: if d == owner { app.take() } else { None },
            });
        }
        let start = self.now;
        let sim = &mut self.domains[owner];
        if let Some(port) = udp_port {
            let previous = sim.core.nodes[node.0].ports.insert(port, id);
            assert!(previous.is_none(), "UDP port {port} already bound");
        }
        if listen_icmp {
            sim.core.nodes[node.0].icmp_listeners.push(id);
        }
        sim.core.schedule(start, Event::AppStart(id));
        id
    }

    pub(crate) fn bind_tcp_port(&mut self, node: NodeId, port: u16, app: AppId) {
        let owner = self.node_domain[node.0] as usize;
        let previous = self.domains[owner].core.nodes[node.0]
            .tcp_ports
            .insert(port, app);
        assert!(previous.is_none(), "TCP port {port} already bound");
    }

    pub(crate) fn remove_app(&mut self, id: AppId) -> Box<dyn Application> {
        for sim in &mut self.domains {
            if let Some(app) = sim.apps[id.0].app.take() {
                return app;
            }
        }
        panic!("application already removed");
    }

    /// Event-loop counters summed across domains; `queue_high_water`
    /// takes the max (each domain has its own queue, so the sum would
    /// be meaningless — and unlike the sums it is *not* comparable to
    /// the sequential engine's figure).
    pub(crate) fn sim_stats(&self) -> SimStats {
        let mut total = SimStats::default();
        for sim in &self.domains {
            let s = sim.core.sim_stats();
            total.events_scheduled += s.events_scheduled;
            total.events_processed += s.events_processed;
            total.queue_high_water = total.queue_high_water.max(s.queue_high_water);
            total.fragmented_datagrams += s.fragmented_datagrams;
            total.fragments_sent += s.fragments_sent;
            total.transit_fastpath += s.transit_fastpath;
            total.transit_slowpath += s.transit_slowpath;
        }
        total
    }

    pub(crate) fn scheduler(&self) -> SchedulerKind {
        self.domains[0].core.scheduler()
    }

    /// `FluidUpdate` events applied, summed across domains.
    pub(crate) fn fluid_applied(&self) -> u64 {
        self.domains.iter().map(|sim| sim.core.fluid_applied).sum()
    }

    pub(crate) fn sched_stats(&self) -> SchedStats {
        let mut total = SchedStats::default();
        for sim in &self.domains {
            let s = sim.core.sched_stats();
            total.slots_touched += s.slots_touched;
            total.cascades += s.cascades;
            total.overflow_events += s.overflow_events;
        }
        total
    }

    /// Harvest metrics byte-identically to a sequential run: summed
    /// engine counters, then every link and node from its owning
    /// domain in global id order, with elapsed time from the global
    /// clock.
    pub(crate) fn collect_metrics(&self, registry: &mut MetricsRegistry) {
        collect_sim_metrics(&self.sim_stats(), registry);
        let elapsed_secs = self.now.as_nanos() as f64 / 1e9;
        for id in 0..self.link_count() {
            collect_link_metrics(self.link(LinkId(id)), elapsed_secs, registry);
        }
        for id in 0..self.node_count() {
            collect_node_metrics(self.node(NodeId(id)), registry);
        }
    }

    pub(crate) fn lineage_enabled(&self) -> bool {
        self.domains[0].core.lineage.is_some()
    }

    pub(crate) fn timeseries_enabled(&self) -> bool {
        self.domains[0].core.timeseries.is_some()
    }

    pub(crate) fn sessions_enabled(&self) -> bool {
        self.domains[0].core.sessions.is_some()
    }

    /// Drop every domain's reference to the shared session recorder so
    /// the caller's own `Arc` clone becomes the sole owner.
    pub(crate) fn release_sessions(&mut self) {
        for sim in &mut self.domains {
            sim.core.sessions = None;
        }
    }

    /// Detach and canonically merge every domain's lineage recording;
    /// see [`LineageDump::merge_domains`]. The part order must be the
    /// domain order — span ids carry their origin domain in the high
    /// bits.
    pub(crate) fn take_lineage(&mut self) -> Option<LineageDump> {
        if !self.lineage_enabled() {
            return None;
        }
        let parts: Vec<LineageDump> = self
            .domains
            .iter_mut()
            .map(|sim| {
                let lin = sim.core.lineage.take().expect("all domains record lineage");
                lin.rec.finish(sim.core.obs.interner())
            })
            .collect();
        Some(LineageDump::merge_domains(parts))
    }

    /// Detach and merge every domain's time-series. Components are
    /// owned by exactly one domain, so the merged dump is identical to
    /// a sequential recorder's.
    pub(crate) fn take_timeseries(&mut self) -> Option<SeriesDump> {
        if !self.timeseries_enabled() {
            return None;
        }
        let mut merged: Option<SeriesDump> = None;
        for sim in &mut self.domains {
            let ts = sim
                .core
                .timeseries
                .take()
                .expect("all domains record series");
            let dump = ts.finish(sim.core.obs.interner());
            match merged.as_mut() {
                None => merged = Some(dump),
                Some(m) => m.merge(&dump),
            }
        }
        merged
    }

    /// Merge the per-domain flight recorders into the JSON Lines (and
    /// eviction count) a single global ring would have produced.
    pub(crate) fn trace_merged(&self) -> (String, u64) {
        let parts: Vec<_> = self
            .domains
            .iter()
            .map(|sim| (&sim.core.obs.trace, sim.core.obs.interner()))
            .collect();
        merged_trace_jsonl(&parts, self.domains[0].core.obs.trace.capacity())
    }

    /// Engine diagnostics; see [`ShardDiag`].
    pub(crate) fn diag(&self) -> ShardDiag {
        ShardDiag {
            shards: self.domains.len() as u16,
            lookahead_ns: self.lookahead,
            barriers: self.barriers,
            transits: self.transits,
            max_exchange_depth: self.max_exchange_depth,
            exchange_reallocs: self.exchange_reallocs,
            per_domain: self
                .domains
                .iter()
                .enumerate()
                .map(|(d, sim)| ShardDomainStats {
                    domain: d as u16,
                    nodes: self
                        .node_domain
                        .iter()
                        .filter(|&&owner| owner as usize == d)
                        .count() as u32,
                    events_processed: sim.core.stats.events_processed,
                    max_queue_depth: sim.core.stats.queue_high_water,
                    sched: sim.core.sched_stats(),
                })
                .collect(),
        }
    }
}

/// `Vec::with_capacity(v.capacity())` as a method, so the partition
/// hands domain 0 a delivery buffer as warm as the one it took.
trait CloneCapacity {
    fn clone_capacity(&self) -> Self;
}

impl CloneCapacity for Vec<Delivery> {
    fn clone_capacity(&self) -> Self {
        Vec::with_capacity(self.capacity())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkConfig;
    use crate::time::SimDuration;

    fn link(id: usize, from: usize, to: usize, prop_ms: u64) -> Link {
        Link::new(
            LinkId(id),
            NodeId(from),
            NodeId(to),
            LinkConfig::ethernet_10m(SimDuration::from_millis(prop_ms)),
        )
    }

    #[test]
    fn assign_domains_cuts_the_slowest_links() {
        // Two clusters of two nodes joined by a slow pair of links:
        // 0-1 (fast), 2-3 (fast), 1-2 (slow).
        let links = vec![
            link(0, 0, 1, 1),
            link(1, 1, 0, 1),
            link(2, 2, 3, 1),
            link(3, 3, 2, 1),
            link(4, 1, 2, 50),
            link(5, 2, 1, 50),
        ];
        let domains = assign_domains(&links, 4, 2);
        assert_eq!(domains, vec![0, 0, 1, 1]);
    }

    #[test]
    fn assign_domains_single_domain_is_trivial() {
        let links = vec![link(0, 0, 1, 1)];
        assert_eq!(assign_domains(&links, 3, 1), vec![0, 0, 0]);
    }

    #[test]
    fn assign_domains_numbers_by_smallest_member() {
        // {2,3} merges before {0,1}, but domains come out renumbered
        // by their smallest member node id.
        let links = vec![link(0, 2, 3, 1), link(1, 0, 1, 30)];
        let domains = assign_domains(&links, 4, 2);
        assert_eq!(domains, vec![0, 0, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "must not exceed the node count")]
    fn assign_domains_rejects_more_shards_than_nodes() {
        assign_domains(&[], 2, 3);
    }

    #[test]
    fn disconnected_leftovers_merge_smallest_first() {
        // Four isolated nodes, two domains: pairwise merges by size
        // then id.
        let domains = assign_domains(&[], 4, 2);
        assert_eq!(domains.iter().filter(|&&d| d == 0).count(), 2);
        assert_eq!(domains.iter().filter(|&&d| d == 1).count(), 2);
    }
}
