//! Simulated time: a nanosecond tick counter.
//!
//! All scheduling in the simulator is expressed in [`SimTime`]
//! (an absolute instant) and [`SimDuration`] (a span). Both are thin
//! newtypes over `u64` nanoseconds, so arithmetic is exact and runs are
//! bit-reproducible — no floating point drift in the clock.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// From nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// From microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// From milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// From whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// From fractional seconds (rounds to the nearest nanosecond;
    /// negative inputs clamp to zero).
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s.max(0.0) * 1e9).round() as u64)
    }

    /// As nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// As fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// As fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The time needed to serialise `bytes` onto a link of `bits_per_sec`.
    pub fn transmission(bytes: usize, bits_per_sec: u64) -> Self {
        assert!(bits_per_sec > 0, "link rate must be positive");
        let bits = bytes as u128 * 8;
        SimDuration(((bits * 1_000_000_000) / bits_per_sec as u128) as u64)
    }

    /// Saturating multiply by an integer factor.
    pub fn saturating_mul(self, k: u64) -> Self {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// An absolute instant of simulated time (nanoseconds since the start
/// of the run).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The run origin.
    pub const ZERO: SimTime = SimTime(0);

    /// Nanoseconds since origin.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds since origin.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Fractional milliseconds since origin.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Span since an earlier instant (saturates at zero).
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimDuration::from_secs(2), SimDuration::from_millis(2000));
        assert_eq!(SimDuration::from_millis(3), SimDuration::from_micros(3000));
        assert_eq!(SimDuration::from_micros(5), SimDuration::from_nanos(5000));
        assert_eq!(
            SimDuration::from_secs_f64(0.25),
            SimDuration::from_millis(250)
        );
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn transmission_time_examples() {
        // 1500 bytes at 10 Mbit/s = 1.2 ms (the paper's client NIC).
        assert_eq!(
            SimDuration::transmission(1500, 10_000_000),
            SimDuration::from_micros(1200)
        );
        // 1 byte at 8 bit/s = 1 s.
        assert_eq!(SimDuration::transmission(1, 8), SimDuration::from_secs(1));
        // Zero bytes take zero time.
        assert_eq!(SimDuration::transmission(0, 56_000), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "link rate must be positive")]
    fn transmission_rejects_zero_rate() {
        let _ = SimDuration::transmission(1, 0);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_millis(40);
        assert_eq!(t.as_millis_f64(), 40.0);
        let u = t + SimDuration::from_millis(2);
        assert_eq!(u.since(t), SimDuration::from_millis(2));
        assert_eq!(t.since(u), SimDuration::ZERO); // saturates
        assert_eq!(u - t, SimDuration::from_millis(2));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_nanos(17).to_string(), "17ns");
        assert_eq!(SimDuration::from_millis(40).to_string(), "40.000ms");
        assert_eq!(SimDuration::from_secs(3).to_string(), "3.000s");
        assert_eq!(
            (SimTime::ZERO + SimDuration::from_millis(1500)).to_string(),
            "1.500000s"
        );
    }

    #[test]
    fn ordering_is_by_instant() {
        let a = SimTime::ZERO + SimDuration::from_nanos(1);
        let b = SimTime::ZERO + SimDuration::from_nanos(2);
        assert!(a < b);
    }
}
