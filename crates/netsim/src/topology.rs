//! Topology construction: the paper's measurement scenario as a
//! simulated internetwork.
//!
//! The experimental setup (§2.D) is one client on the WPI campus
//! network (10 Mbit/s Ethernet NIC) reaching six distinct server sites
//! over the 2002 Internet. §3.A reports the path statistics we
//! calibrate against: median RTT ≈ 40 ms, max ≈ 160 ms (Figure 1), and
//! 10–30 hops with most sites 15–20 away (Figure 2).
//!
//! [`InternetScenario::build`] samples a hop count and RTT per site
//! from those calibrated distributions, materialises a router chain per
//! site behind a shared campus access router, and installs routes in
//! both directions.

use crate::fluid::{EngineKind, FluidFlow, RateSchedule};
use crate::link::{LinkConfig, LinkId, NodeId};
use crate::rng::SimRng;
use crate::sim::Simulation;
use crate::time::{SimDuration, SimTime};
use std::net::Ipv4Addr;

/// Calibration constants for path sampling (§3.A, Figures 1 and 2).
pub mod calibration {
    /// Median RTT in milliseconds (Figure 1: "median round-trip time of
    /// 40 ms").
    pub const RTT_MEDIAN_MS: f64 = 40.0;
    /// Log-normal sigma chosen so the RTT CDF spans ~20–160 ms.
    pub const RTT_SIGMA: f64 = 0.45;
    /// Clamp bounds for sampled RTTs in milliseconds (Figure 1 axis).
    pub const RTT_MIN_MS: f64 = 15.0;
    /// Maximum observed RTT (Figure 1: "maximum round-trip time of 160 ms").
    pub const RTT_MAX_MS: f64 = 160.0;
    /// Hop-count normal mean (Figure 2: "most of the servers were
    /// between 15 and 20 hops away").
    pub const HOPS_MEAN: f64 = 17.0;
    /// Hop-count normal standard deviation.
    pub const HOPS_STD: f64 = 3.0;
    /// Hop-count clamp bounds (Figure 2 axis runs 10–30).
    pub const HOPS_MIN: usize = 10;
    /// Upper clamp bound for hop count.
    pub const HOPS_MAX: usize = 30;
}

/// Sample a per-site hop count from the Figure 2 calibration.
pub fn sample_hop_count(rng: &mut SimRng) -> usize {
    let h = rng
        .normal(calibration::HOPS_MEAN, calibration::HOPS_STD)
        .round();
    (h as i64).clamp(calibration::HOPS_MIN as i64, calibration::HOPS_MAX as i64) as usize
}

/// Sample a per-site baseline RTT from the Figure 1 calibration.
pub fn sample_rtt(rng: &mut SimRng) -> SimDuration {
    let ms = rng
        .log_normal(calibration::RTT_MEDIAN_MS.ln(), calibration::RTT_SIGMA)
        .clamp(calibration::RTT_MIN_MS, calibration::RTT_MAX_MS);
    SimDuration::from_secs_f64(ms / 1e3)
}

/// One server site reachable from the client.
#[derive(Debug, Clone)]
pub struct SitePath {
    /// The server host.
    pub server: NodeId,
    /// The server's address (what the players stream from).
    pub server_addr: Ipv4Addr,
    /// Routers between the access router and the server, in order.
    pub routers: Vec<NodeId>,
    /// Traceroute-visible hop count (routers + the server itself).
    pub hop_count: usize,
    /// Sum of configured propagation delays, one way.
    pub one_way_delay: SimDuration,
    /// The narrowest link rate on the path, which the RealServer model
    /// uses as its bandwidth estimate when capping the buffering burst.
    pub bottleneck_bps: u64,
    /// The server's access link (the usual bottleneck), client-ward.
    pub server_access_down: LinkId,
}

/// The full scenario: client, campus access router, and server sites.
#[derive(Debug, Clone)]
pub struct InternetScenario {
    /// The measurement client (runs players, trackers, sniffer).
    pub client: NodeId,
    /// Client address.
    pub client_addr: Ipv4Addr,
    /// Campus access router (hop 1 for every site).
    pub access_router: NodeId,
    /// The client's access link, downstream direction (router → client)
    /// — where the paper's sniffer sat.
    pub client_access_down: LinkId,
    /// One entry per server site.
    pub sites: Vec<SitePath>,
}

/// Tunables for scenario construction.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Number of server sites (the paper used 6).
    pub n_sites: usize,
    /// Client access link (defaults to 10 Mbit/s Ethernet).
    pub client_access: LinkConfig,
    /// Backbone hop rate in bit/s (defaults to a 45 Mbit/s T3).
    pub backbone_rate: u64,
    /// Per-site server access rate in bit/s. `None` picks 10 Mbit/s.
    /// A site serving only low rates might sit behind a T1; the harness
    /// sets this per experiment.
    pub server_access_rate: Option<u64>,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            n_sites: 6,
            client_access: LinkConfig::ethernet_10m(SimDuration::from_micros(50)),
            backbone_rate: 45_000_000,
            server_access_rate: None,
        }
    }
}

impl InternetScenario {
    /// Build the scenario into `sim`, drawing path parameters from `rng`.
    pub fn build(sim: &mut Simulation, rng: &mut SimRng, config: &ScenarioConfig) -> Self {
        assert!(config.n_sites >= 1 && config.n_sites <= 200);
        let client_addr = Ipv4Addr::new(130, 215, 36, 10);
        let client = sim.add_host("wpi-client", client_addr);
        let access_addr = Ipv4Addr::new(130, 215, 36, 1);
        let access_router = sim.add_router("wpi-gw", access_addr);

        let (up, down) = sim.add_duplex(client, access_router, config.client_access);
        sim.core_mut().node_mut(client).default_route = Some(up);
        sim.core_mut()
            .node_mut(access_router)
            .add_route(client_addr, down);

        let mut sites = Vec::with_capacity(config.n_sites);
        for site_idx in 0..config.n_sites {
            sites.push(Self::build_site(
                sim,
                rng,
                config,
                site_idx,
                client_addr,
                access_router,
                down,
            ));
        }
        InternetScenario {
            client,
            client_addr,
            access_router,
            client_access_down: down,
            sites,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn build_site(
        sim: &mut Simulation,
        rng: &mut SimRng,
        config: &ScenarioConfig,
        site_idx: usize,
        client_addr: Ipv4Addr,
        access_router: NodeId,
        access_to_client: LinkId,
    ) -> SitePath {
        let hop_count = sample_hop_count(rng);
        let rtt = sample_rtt(rng);
        let one_way = SimDuration::from_nanos(rtt.as_nanos() / 2);

        // Router chain: the access router is hop 1; the server is the
        // final hop; in between sit hop_count - 2 transit routers.
        let transit = hop_count.saturating_sub(2);
        // Split the one-way delay across (transit + 2) links with
        // exponential weights; one randomly chosen hop is a long-haul
        // link carrying 6x weight.
        let n_links = transit + 2;
        let mut weights: Vec<f64> = (0..n_links).map(|_| rng.exponential(1.0) + 0.05).collect();
        let long_haul = rng.index(n_links);
        weights[long_haul] *= 6.0;
        let total_weight: f64 = weights.iter().sum();
        let delays: Vec<SimDuration> = weights
            .iter()
            .map(|w| SimDuration::from_nanos((one_way.as_nanos() as f64 * w / total_weight) as u64))
            .collect();

        let server_addr = Ipv4Addr::new(204, 71, site_idx as u8, 33);
        let server_rate = config.server_access_rate.unwrap_or(10_000_000);

        // Chain construction. Forward direction: each node routes the
        // server's address to the next hop. Reverse direction: every
        // router's default route points back toward the client side, so
        // returning traffic and ICMP errors (time-exceeded to the
        // client) flow home without per-destination routes.
        let _ = (client_addr, access_to_client);
        let mut prev = access_router;
        let mut routers = Vec::with_capacity(transit);
        // An index loop reads better here: `t` names both the hop and
        // its delay slot.
        #[allow(clippy::needless_range_loop)]
        for t in 0..transit {
            let addr = Ipv4Addr::new(10, 100 + site_idx as u8, t as u8, 1);
            let router = sim.add_router(&format!("site{site_idx}-r{t}"), addr);
            let cfg = LinkConfig {
                rate_bps: config.backbone_rate,
                propagation: delays[t],
                queue_capacity: 256 * 1024,
                mtu: turb_wire::DEFAULT_MTU,
            };
            let (fwd, back) = sim.add_duplex(prev, router, cfg);
            sim.core_mut().node_mut(prev).add_route(server_addr, fwd);
            sim.core_mut().node_mut(router).default_route = Some(back);
            prev = router;
            routers.push(router);
        }

        // Server access link (often the path bottleneck).
        let server = sim.add_host(&format!("site{site_idx}-server"), server_addr);
        let access_cfg = LinkConfig {
            rate_bps: server_rate,
            propagation: *delays.last().expect("at least one delay"),
            queue_capacity: 64 * 1024,
            mtu: turb_wire::DEFAULT_MTU,
        };
        let (fwd, back) = sim.add_duplex(prev, server, access_cfg);
        sim.core_mut().node_mut(prev).add_route(server_addr, fwd);
        sim.core_mut().node_mut(server).default_route = Some(back);

        let bottleneck_bps = server_rate
            .min(config.backbone_rate)
            .min(config.client_access.rate_bps);

        SitePath {
            server,
            server_addr,
            routers,
            hop_count,
            one_way_delay: one_way,
            bottleneck_bps,
            server_access_down: back,
        }
    }
}

/// Tunables for the replicated-client scale scenario.
///
/// Where [`InternetScenario`] reproduces the paper's six-site
/// measurement path, `ScaleScenario` exists to make the event queue
/// *deep*: `groups * clients_per_group` clients all holding a pending
/// timer, so the shard engine's speedup (and the sequential engine's
/// scheduler) can be measured on 10⁴–10⁵ pending events instead of a
/// handful of streams.
#[derive(Debug, Clone)]
pub struct ScaleConfig {
    /// Site groups arranged in a ring; the inter-group links are the
    /// natural shard cuts.
    pub groups: usize,
    /// Client hosts per group.
    pub clients_per_group: usize,
    /// UDP datagrams each client sends over the run.
    pub packets_per_client: u32,
    /// Interval between a client's sends.
    pub send_interval: SimDuration,
    /// UDP payload size in bytes.
    pub payload_bytes: usize,
    /// Long-lived background bulk flows pressuring the backbone ring,
    /// server-to-next-server. Zero (the default) adds nothing at all,
    /// so existing digests are untouched.
    pub background_flows: usize,
    /// How background flows are simulated: [`EngineKind::Packet`]
    /// runs each as a real UDP sender, [`EngineKind::Hybrid`] lowers
    /// them onto the fluid solver. Irrelevant when `background_flows`
    /// is zero.
    pub engine: EngineKind,
}

impl Default for ScaleConfig {
    fn default() -> Self {
        ScaleConfig {
            groups: 8,
            clients_per_group: 256,
            packets_per_client: 40,
            send_interval: SimDuration::from_millis(50),
            payload_bytes: 400,
            background_flows: 0,
            engine: EngineKind::Packet,
        }
    }
}

/// One group of the scale scenario.
#[derive(Debug, Clone)]
pub struct ScaleGroup {
    /// The group's router (a ring member).
    pub router: NodeId,
    /// The group's sink server.
    pub server: NodeId,
    /// The server's address.
    pub server_addr: Ipv4Addr,
    /// The group's client hosts.
    pub clients: Vec<NodeId>,
}

/// Totals one group's sink has absorbed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScaleSinkReport {
    /// Datagrams received.
    pub datagrams: u64,
    /// Payload bytes received.
    pub bytes: u64,
}

/// The built scale scenario: a ring of `groups` routers, each fronting
/// one sink server and `clients_per_group` source clients.
#[derive(Debug)]
pub struct ScaleScenario {
    /// One entry per group, in ring order.
    pub groups: Vec<ScaleGroup>,
    /// Per-group sink totals, filled in as the simulation runs.
    pub sinks: Vec<std::sync::Arc<std::sync::Mutex<ScaleSinkReport>>>,
    /// Total expected datagram sends (`clients * packets_per_client`).
    pub expected_sends: u64,
    /// Aggregate totals absorbed by the background sinks. Stays zero
    /// when `background_flows == 0` or under the hybrid engine (fluid
    /// flows move rate, not datagrams).
    pub background: std::sync::Arc<std::sync::Mutex<ScaleSinkReport>>,
    /// Forward ring link of each group (router `g` → router `g+1`).
    pub ring: Vec<LinkId>,
}

/// UDP port every scale sink listens on.
pub const SCALE_SINK_PORT: u16 = 9000;
/// UDP port the background bulk sinks listen on, kept off the
/// foreground port so `sinks` totals stay foreground-only.
pub const SCALE_BACKGROUND_PORT: u16 = 9001;
/// Demand of one background bulk flow, in bits per second.
pub const SCALE_BACKGROUND_DEMAND_BPS: u64 = 1_000_000;
/// Payload of one background datagram under the packet engine.
pub const SCALE_BACKGROUND_PAYLOAD: usize = 500;

struct ScaleSource {
    dst: Ipv4Addr,
    dst_port: u16,
    src_port: u16,
    remaining: u32,
    interval: SimDuration,
    first_after: SimDuration,
    payload: usize,
}

impl crate::sim::Application for ScaleSource {
    fn on_start(&mut self, ctx: &mut crate::sim::Ctx<'_>) {
        if self.remaining > 0 {
            ctx.set_timer_after(self.first_after, 0);
        }
    }
    fn on_timer(&mut self, ctx: &mut crate::sim::Ctx<'_>, _token: u64) {
        ctx.send_udp(
            self.src_port,
            self.dst,
            self.dst_port,
            bytes::Bytes::from(vec![0u8; self.payload]),
        );
        self.remaining -= 1;
        if self.remaining > 0 {
            ctx.set_timer_after(self.interval, 0);
        }
    }
}

struct ScaleSink {
    report: std::sync::Arc<std::sync::Mutex<ScaleSinkReport>>,
}

impl crate::sim::Application for ScaleSink {
    fn on_udp(
        &mut self,
        _ctx: &mut crate::sim::Ctx<'_>,
        _from: (Ipv4Addr, u16),
        _dst_port: u16,
        payload: bytes::Bytes,
    ) {
        let mut r = self.report.lock().unwrap();
        r.datagrams += 1;
        r.bytes += payload.len() as u64;
    }
}

impl ScaleScenario {
    /// Build the scenario into `sim`, topology and applications both.
    ///
    /// Everything is arithmetic in the client index — no randomness at
    /// all — so the traffic matrix is a pure function of the config and
    /// identical under any shard partition. Roughly 1 client in 8
    /// sends to the *next* group's server instead of its own, forcing
    /// traffic across the ring cuts.
    pub fn build(sim: &mut Simulation, config: &ScaleConfig) -> ScaleScenario {
        assert!(
            (2..=64).contains(&config.groups),
            "groups must be in 2..=64"
        );
        assert!(
            (1..=60_000).contains(&config.clients_per_group),
            "clients_per_group must be in 1..=60000"
        );
        let g_count = config.groups;

        // Ring of routers, one server behind each.
        let mut routers = Vec::with_capacity(g_count);
        let mut servers = Vec::with_capacity(g_count);
        let mut server_addrs = Vec::with_capacity(g_count);
        let mut server_ups = Vec::with_capacity(g_count);
        let mut server_downs = Vec::with_capacity(g_count);
        for g in 0..g_count {
            let router = sim.add_router(
                &format!("scale-g{g}-gw"),
                Ipv4Addr::new(172, 16, g as u8, 1),
            );
            let server_addr = Ipv4Addr::new(192, 168, g as u8, 10);
            let server = sim.add_host(&format!("scale-g{g}-server"), server_addr);
            let (up, down) =
                sim.add_duplex(server, router, LinkConfig::t3(SimDuration::from_micros(20)));
            sim.core_mut().node_mut(server).default_route = Some(up);
            sim.core_mut().node_mut(router).add_route(server_addr, down);
            routers.push(router);
            servers.push(server);
            server_addrs.push(server_addr);
            server_ups.push(up);
            server_downs.push(down);
        }

        // The ring itself: 5 ms T3 hops, clockwise default routes. The
        // 5 ms propagation dwarfs every access link, so these are the
        // links the shard partitioner cuts — and 5 ms of lookahead is
        // plenty of work per barrier window.
        let mut ring = Vec::with_capacity(g_count);
        for g in 0..g_count {
            let next = (g + 1) % g_count;
            let (fwd, _back) = sim.add_duplex(
                routers[g],
                routers[next],
                LinkConfig::t3(SimDuration::from_millis(5)),
            );
            sim.core_mut().node_mut(routers[g]).default_route = Some(fwd);
            ring.push(fwd);
        }

        // Clients: ethernet access with per-client propagation spread,
        // sources started on arithmetically staggered offsets.
        let interval_ns = config.send_interval.as_nanos().max(1);
        let mut groups = Vec::with_capacity(g_count);
        let mut sinks = Vec::with_capacity(g_count);
        for g in 0..g_count {
            let mut clients = Vec::with_capacity(config.clients_per_group);
            for i in 0..config.clients_per_group {
                let global = g * config.clients_per_group + i;
                let addr = Ipv4Addr::new(10, g as u8, (i >> 8) as u8, (i & 0xFF) as u8);
                let client = sim.add_host(&format!("scale-g{g}-c{i}"), addr);
                let prop = SimDuration::from_micros(10 + (global as u64 * 13) % 90);
                let (up, down) = sim.add_duplex(client, routers[g], LinkConfig::ethernet_10m(prop));
                sim.core_mut().node_mut(client).default_route = Some(up);
                sim.core_mut().node_mut(routers[g]).add_route(addr, down);
                // ~1/8 of clients stream to the next group over the
                // ring; the rest stay local.
                let dst_group = if global.is_multiple_of(8) {
                    (g + 1) % g_count
                } else {
                    g
                };
                sim.add_app(
                    client,
                    Box::new(ScaleSource {
                        dst: server_addrs[dst_group],
                        dst_port: SCALE_SINK_PORT,
                        src_port: 20_000 + (i % 40_000) as u16,
                        remaining: config.packets_per_client,
                        interval: config.send_interval,
                        first_after: SimDuration::from_nanos(
                            (global as u64).wrapping_mul(7919) % interval_ns,
                        ),
                        payload: config.payload_bytes,
                    }),
                    None,
                    false,
                );
                clients.push(client);
            }
            let report = std::sync::Arc::new(std::sync::Mutex::new(ScaleSinkReport::default()));
            sim.add_app(
                servers[g],
                Box::new(ScaleSink {
                    report: report.clone(),
                }),
                Some(SCALE_SINK_PORT),
                false,
            );
            sinks.push(report);
            groups.push(ScaleGroup {
                router: routers[g],
                server: servers[g],
                server_addr: server_addrs[g],
                clients,
            });
        }

        // Background bulk population over the ring: flow `i` runs
        // server `g` → server `g+1` (g = i mod groups) for the length
        // of the send phase, starting on one of eight staggered
        // offsets. Everything below is arithmetic in `i` — no RNG —
        // and both engines see the same flow matrix; they differ only
        // in whether it moves datagrams or solver rate.
        let background = std::sync::Arc::new(std::sync::Mutex::new(ScaleSinkReport::default()));
        if config.background_flows > 0 {
            let end_ns = (interval_ns * u64::from(config.packets_per_client)).max(interval_ns);
            let stagger_ns = (interval_ns / 8).max(1);
            match config.engine {
                EngineKind::Hybrid => {
                    for i in 0..config.background_flows {
                        let g = i % g_count;
                        let start_ns = (i % 8) as u64 * stagger_ns;
                        sim.add_fluid_flow(FluidFlow {
                            route: vec![server_ups[g], ring[g], server_downs[(g + 1) % g_count]],
                            schedule: RateSchedule::constant(
                                SimTime(start_ns),
                                SimTime(end_ns.max(start_ns + 1)),
                                SCALE_BACKGROUND_DEMAND_BPS,
                            ),
                        });
                    }
                }
                EngineKind::Packet => {
                    for &server in &servers {
                        sim.add_app(
                            server,
                            Box::new(ScaleSink {
                                report: background.clone(),
                            }),
                            Some(SCALE_BACKGROUND_PORT),
                            false,
                        );
                    }
                    let gap_ns = (SCALE_BACKGROUND_PAYLOAD as u64 * 8 * 1_000_000_000)
                        / SCALE_BACKGROUND_DEMAND_BPS;
                    for i in 0..config.background_flows {
                        let g = i % g_count;
                        let start_ns = (i % 8) as u64 * stagger_ns;
                        let remaining =
                            ((end_ns.max(start_ns + 1) - start_ns) / gap_ns.max(1)).max(1);
                        sim.add_app(
                            servers[g],
                            Box::new(ScaleSource {
                                dst: server_addrs[(g + 1) % g_count],
                                dst_port: SCALE_BACKGROUND_PORT,
                                src_port: 30_000 + (i % 30_000) as u16,
                                remaining: remaining.min(u64::from(u32::MAX)) as u32,
                                interval: SimDuration::from_nanos(gap_ns.max(1)),
                                first_after: SimDuration::from_nanos(start_ns),
                                payload: SCALE_BACKGROUND_PAYLOAD,
                            }),
                            None,
                            false,
                        );
                    }
                }
            }
        }

        ScaleScenario {
            groups,
            sinks,
            expected_sends: (g_count * config.clients_per_group) as u64
                * u64::from(config.packets_per_client),
            background,
            ring,
        }
    }

    /// Sum of all sinks' totals.
    pub fn total_received(&self) -> ScaleSinkReport {
        let mut total = ScaleSinkReport::default();
        for sink in &self.sinks {
            let r = sink.lock().unwrap();
            total.datagrams += r.datagrams;
            total.bytes += r.bytes;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulation;

    #[test]
    fn hop_count_samples_stay_in_figure2_range() {
        let mut rng = SimRng::new(1);
        let samples: Vec<usize> = (0..1000).map(|_| sample_hop_count(&mut rng)).collect();
        assert!(samples.iter().all(|&h| (10..=30).contains(&h)));
        let in_band = samples.iter().filter(|&&h| (15..=20).contains(&h)).count();
        assert!(
            in_band as f64 / samples.len() as f64 > 0.5,
            "most sites should be 15-20 hops away, got {in_band}/1000"
        );
    }

    #[test]
    fn rtt_samples_match_figure1_calibration() {
        let mut rng = SimRng::new(2);
        let mut ms: Vec<f64> = (0..2000)
            .map(|_| sample_rtt(&mut rng).as_millis_f64())
            .collect();
        ms.sort_by(f64::total_cmp);
        let median = ms[ms.len() / 2];
        assert!((30.0..=50.0).contains(&median), "median = {median}");
        assert!(*ms.last().unwrap() <= 160.0 + 1e-9);
        assert!(*ms.first().unwrap() >= 15.0 - 1e-9);
    }

    #[test]
    fn scenario_builds_with_six_sites() {
        let mut sim = Simulation::new(3);
        let mut rng = SimRng::new(3);
        let scenario = InternetScenario::build(&mut sim, &mut rng, &ScenarioConfig::default());
        assert_eq!(scenario.sites.len(), 6);
        for site in &scenario.sites {
            assert!((10..=30).contains(&site.hop_count));
            assert_eq!(site.routers.len(), site.hop_count - 2);
            assert!(site.bottleneck_bps <= 10_000_000);
        }
        // All addresses distinct is enforced by construction (asserted
        // inside add_host); spot-check the route out of the client.
        assert!(sim
            .core()
            .node(scenario.client)
            .route(scenario.sites[0].server_addr)
            .is_some());
    }

    #[test]
    fn scale_scenario_delivers_every_datagram() {
        let mut sim = Simulation::new(5);
        let config = ScaleConfig {
            groups: 4,
            clients_per_group: 8,
            packets_per_client: 5,
            send_interval: SimDuration::from_millis(20),
            payload_bytes: 200,
            ..ScaleConfig::default()
        };
        let scenario = ScaleScenario::build(&mut sim, &config);
        sim.run_to_idle(crate::time::SimTime::ZERO + SimDuration::from_secs(30));
        let total = scenario.total_received();
        assert_eq!(total.datagrams, scenario.expected_sends);
        assert_eq!(total.bytes, scenario.expected_sends * 200);
        // Cross-group senders exist (client 0 of each group at least),
        // so the ring links must have carried traffic.
        let cross: u64 = scenario
            .sinks
            .iter()
            .map(|s| s.lock().unwrap().datagrams)
            .sum();
        assert!(cross > 0);
    }

    #[test]
    fn scale_scenario_needs_no_randomness() {
        // Two sims with different seeds produce identical traffic:
        // the scenario is a pure function of its config.
        let totals: Vec<u64> = [3u64, 400]
            .iter()
            .map(|&seed| {
                let mut sim = Simulation::new(seed);
                let scenario = ScaleScenario::build(
                    &mut sim,
                    &ScaleConfig {
                        groups: 2,
                        clients_per_group: 4,
                        packets_per_client: 3,
                        send_interval: SimDuration::from_millis(10),
                        payload_bytes: 100,
                        ..ScaleConfig::default()
                    },
                );
                sim.run_to_idle(crate::time::SimTime::ZERO + SimDuration::from_secs(10));
                sim.sim_stats().events_processed
            })
            .collect();
        assert_eq!(totals[0], totals[1]);
    }

    fn background_config(engine: EngineKind, flows: usize) -> ScaleConfig {
        ScaleConfig {
            groups: 4,
            clients_per_group: 4,
            packets_per_client: 5,
            send_interval: SimDuration::from_millis(20),
            payload_bytes: 200,
            background_flows: flows,
            engine,
        }
    }

    #[test]
    fn hybrid_background_registers_fluid_flows() {
        let mut sim = Simulation::new(7);
        let scenario = ScaleScenario::build(&mut sim, &background_config(EngineKind::Hybrid, 12));
        assert_eq!(scenario.ring.len(), 4);
        sim.run_to_idle(crate::time::SimTime::ZERO + SimDuration::from_secs(30));
        let diag = sim
            .fluid_diag()
            .expect("hybrid run should carry fluid diag");
        assert_eq!(diag.flows, 12);
        assert!(diag.updates_applied > 0, "shares must have been applied");
        assert!(diag.peak_link_fluid_bps > 0);
        // Foreground still delivers everything: fluid shares slow the
        // ring but drop nothing.
        assert_eq!(scenario.total_received().datagrams, scenario.expected_sends);
        // No background datagrams exist under the hybrid engine.
        assert_eq!(scenario.background.lock().unwrap().datagrams, 0);
    }

    #[test]
    fn packet_background_moves_real_datagrams() {
        let mut sim = Simulation::new(7);
        let scenario = ScaleScenario::build(&mut sim, &background_config(EngineKind::Packet, 12));
        sim.run_to_idle(crate::time::SimTime::ZERO + SimDuration::from_secs(30));
        assert!(sim.fluid_diag().is_none(), "packet engine uses no solver");
        let bg = scenario.background.lock().unwrap();
        assert!(bg.datagrams > 0, "background senders must deliver");
        assert_eq!(bg.bytes, bg.datagrams * SCALE_BACKGROUND_PAYLOAD as u64);
        // Background stays off the foreground sinks entirely.
        assert_eq!(scenario.total_received().datagrams, scenario.expected_sends);
    }

    #[test]
    fn hybrid_with_zero_background_matches_packet_exactly() {
        let run = |engine: EngineKind| {
            let mut sim = Simulation::new(11);
            let scenario = ScaleScenario::build(&mut sim, &background_config(engine, 0));
            sim.run_to_idle(crate::time::SimTime::ZERO + SimDuration::from_secs(30));
            assert!(sim.fluid_diag().is_none());
            (sim.sim_stats().events_processed, scenario.total_received())
        };
        assert_eq!(run(EngineKind::Packet), run(EngineKind::Hybrid));
    }

    #[test]
    fn different_seeds_give_different_paths() {
        let paths: Vec<usize> = [10u64, 20]
            .iter()
            .map(|&seed| {
                let mut sim = Simulation::new(seed);
                let mut rng = SimRng::new(seed);
                let sc = InternetScenario::build(&mut sim, &mut rng, &ScenarioConfig::default());
                sc.sites.iter().map(|s| s.hop_count).sum()
            })
            .collect();
        assert_ne!(paths[0], paths[1]);
    }
}
