//! Topology construction: the paper's measurement scenario as a
//! simulated internetwork.
//!
//! The experimental setup (§2.D) is one client on the WPI campus
//! network (10 Mbit/s Ethernet NIC) reaching six distinct server sites
//! over the 2002 Internet. §3.A reports the path statistics we
//! calibrate against: median RTT ≈ 40 ms, max ≈ 160 ms (Figure 1), and
//! 10–30 hops with most sites 15–20 away (Figure 2).
//!
//! [`InternetScenario::build`] samples a hop count and RTT per site
//! from those calibrated distributions, materialises a router chain per
//! site behind a shared campus access router, and installs routes in
//! both directions.

use crate::link::{LinkConfig, LinkId, NodeId};
use crate::rng::SimRng;
use crate::sim::Simulation;
use crate::time::SimDuration;
use std::net::Ipv4Addr;

/// Calibration constants for path sampling (§3.A, Figures 1 and 2).
pub mod calibration {
    /// Median RTT in milliseconds (Figure 1: "median round-trip time of
    /// 40 ms").
    pub const RTT_MEDIAN_MS: f64 = 40.0;
    /// Log-normal sigma chosen so the RTT CDF spans ~20–160 ms.
    pub const RTT_SIGMA: f64 = 0.45;
    /// Clamp bounds for sampled RTTs in milliseconds (Figure 1 axis).
    pub const RTT_MIN_MS: f64 = 15.0;
    /// Maximum observed RTT (Figure 1: "maximum round-trip time of 160 ms").
    pub const RTT_MAX_MS: f64 = 160.0;
    /// Hop-count normal mean (Figure 2: "most of the servers were
    /// between 15 and 20 hops away").
    pub const HOPS_MEAN: f64 = 17.0;
    /// Hop-count normal standard deviation.
    pub const HOPS_STD: f64 = 3.0;
    /// Hop-count clamp bounds (Figure 2 axis runs 10–30).
    pub const HOPS_MIN: usize = 10;
    /// Upper clamp bound for hop count.
    pub const HOPS_MAX: usize = 30;
}

/// Sample a per-site hop count from the Figure 2 calibration.
pub fn sample_hop_count(rng: &mut SimRng) -> usize {
    let h = rng
        .normal(calibration::HOPS_MEAN, calibration::HOPS_STD)
        .round();
    (h as i64).clamp(calibration::HOPS_MIN as i64, calibration::HOPS_MAX as i64) as usize
}

/// Sample a per-site baseline RTT from the Figure 1 calibration.
pub fn sample_rtt(rng: &mut SimRng) -> SimDuration {
    let ms = rng
        .log_normal(calibration::RTT_MEDIAN_MS.ln(), calibration::RTT_SIGMA)
        .clamp(calibration::RTT_MIN_MS, calibration::RTT_MAX_MS);
    SimDuration::from_secs_f64(ms / 1e3)
}

/// One server site reachable from the client.
#[derive(Debug, Clone)]
pub struct SitePath {
    /// The server host.
    pub server: NodeId,
    /// The server's address (what the players stream from).
    pub server_addr: Ipv4Addr,
    /// Routers between the access router and the server, in order.
    pub routers: Vec<NodeId>,
    /// Traceroute-visible hop count (routers + the server itself).
    pub hop_count: usize,
    /// Sum of configured propagation delays, one way.
    pub one_way_delay: SimDuration,
    /// The narrowest link rate on the path, which the RealServer model
    /// uses as its bandwidth estimate when capping the buffering burst.
    pub bottleneck_bps: u64,
    /// The server's access link (the usual bottleneck), client-ward.
    pub server_access_down: LinkId,
}

/// The full scenario: client, campus access router, and server sites.
#[derive(Debug, Clone)]
pub struct InternetScenario {
    /// The measurement client (runs players, trackers, sniffer).
    pub client: NodeId,
    /// Client address.
    pub client_addr: Ipv4Addr,
    /// Campus access router (hop 1 for every site).
    pub access_router: NodeId,
    /// The client's access link, downstream direction (router → client)
    /// — where the paper's sniffer sat.
    pub client_access_down: LinkId,
    /// One entry per server site.
    pub sites: Vec<SitePath>,
}

/// Tunables for scenario construction.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Number of server sites (the paper used 6).
    pub n_sites: usize,
    /// Client access link (defaults to 10 Mbit/s Ethernet).
    pub client_access: LinkConfig,
    /// Backbone hop rate in bit/s (defaults to a 45 Mbit/s T3).
    pub backbone_rate: u64,
    /// Per-site server access rate in bit/s. `None` picks 10 Mbit/s.
    /// A site serving only low rates might sit behind a T1; the harness
    /// sets this per experiment.
    pub server_access_rate: Option<u64>,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            n_sites: 6,
            client_access: LinkConfig::ethernet_10m(SimDuration::from_micros(50)),
            backbone_rate: 45_000_000,
            server_access_rate: None,
        }
    }
}

impl InternetScenario {
    /// Build the scenario into `sim`, drawing path parameters from `rng`.
    pub fn build(sim: &mut Simulation, rng: &mut SimRng, config: &ScenarioConfig) -> Self {
        assert!(config.n_sites >= 1 && config.n_sites <= 200);
        let client_addr = Ipv4Addr::new(130, 215, 36, 10);
        let client = sim.add_host("wpi-client", client_addr);
        let access_addr = Ipv4Addr::new(130, 215, 36, 1);
        let access_router = sim.add_router("wpi-gw", access_addr);

        let (up, down) = sim.add_duplex(client, access_router, config.client_access);
        sim.core_mut().node_mut(client).default_route = Some(up);
        sim.core_mut()
            .node_mut(access_router)
            .add_route(client_addr, down);

        let mut sites = Vec::with_capacity(config.n_sites);
        for site_idx in 0..config.n_sites {
            sites.push(Self::build_site(
                sim,
                rng,
                config,
                site_idx,
                client_addr,
                access_router,
                down,
            ));
        }
        InternetScenario {
            client,
            client_addr,
            access_router,
            client_access_down: down,
            sites,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn build_site(
        sim: &mut Simulation,
        rng: &mut SimRng,
        config: &ScenarioConfig,
        site_idx: usize,
        client_addr: Ipv4Addr,
        access_router: NodeId,
        access_to_client: LinkId,
    ) -> SitePath {
        let hop_count = sample_hop_count(rng);
        let rtt = sample_rtt(rng);
        let one_way = SimDuration::from_nanos(rtt.as_nanos() / 2);

        // Router chain: the access router is hop 1; the server is the
        // final hop; in between sit hop_count - 2 transit routers.
        let transit = hop_count.saturating_sub(2);
        // Split the one-way delay across (transit + 2) links with
        // exponential weights; one randomly chosen hop is a long-haul
        // link carrying 6x weight.
        let n_links = transit + 2;
        let mut weights: Vec<f64> = (0..n_links).map(|_| rng.exponential(1.0) + 0.05).collect();
        let long_haul = rng.index(n_links);
        weights[long_haul] *= 6.0;
        let total_weight: f64 = weights.iter().sum();
        let delays: Vec<SimDuration> = weights
            .iter()
            .map(|w| SimDuration::from_nanos((one_way.as_nanos() as f64 * w / total_weight) as u64))
            .collect();

        let server_addr = Ipv4Addr::new(204, 71, site_idx as u8, 33);
        let server_rate = config.server_access_rate.unwrap_or(10_000_000);

        // Chain construction. Forward direction: each node routes the
        // server's address to the next hop. Reverse direction: every
        // router's default route points back toward the client side, so
        // returning traffic and ICMP errors (time-exceeded to the
        // client) flow home without per-destination routes.
        let _ = (client_addr, access_to_client);
        let mut prev = access_router;
        let mut routers = Vec::with_capacity(transit);
        // An index loop reads better here: `t` names both the hop and
        // its delay slot.
        #[allow(clippy::needless_range_loop)]
        for t in 0..transit {
            let addr = Ipv4Addr::new(10, 100 + site_idx as u8, t as u8, 1);
            let router = sim.add_router(&format!("site{site_idx}-r{t}"), addr);
            let cfg = LinkConfig {
                rate_bps: config.backbone_rate,
                propagation: delays[t],
                queue_capacity: 256 * 1024,
                mtu: turb_wire::DEFAULT_MTU,
            };
            let (fwd, back) = sim.add_duplex(prev, router, cfg);
            sim.core_mut().node_mut(prev).add_route(server_addr, fwd);
            sim.core_mut().node_mut(router).default_route = Some(back);
            prev = router;
            routers.push(router);
        }

        // Server access link (often the path bottleneck).
        let server = sim.add_host(&format!("site{site_idx}-server"), server_addr);
        let access_cfg = LinkConfig {
            rate_bps: server_rate,
            propagation: *delays.last().expect("at least one delay"),
            queue_capacity: 64 * 1024,
            mtu: turb_wire::DEFAULT_MTU,
        };
        let (fwd, back) = sim.add_duplex(prev, server, access_cfg);
        sim.core_mut().node_mut(prev).add_route(server_addr, fwd);
        sim.core_mut().node_mut(server).default_route = Some(back);

        let bottleneck_bps = server_rate
            .min(config.backbone_rate)
            .min(config.client_access.rate_bps);

        SitePath {
            server,
            server_addr,
            routers,
            hop_count,
            one_way_delay: one_way,
            bottleneck_bps,
            server_access_down: back,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulation;

    #[test]
    fn hop_count_samples_stay_in_figure2_range() {
        let mut rng = SimRng::new(1);
        let samples: Vec<usize> = (0..1000).map(|_| sample_hop_count(&mut rng)).collect();
        assert!(samples.iter().all(|&h| (10..=30).contains(&h)));
        let in_band = samples.iter().filter(|&&h| (15..=20).contains(&h)).count();
        assert!(
            in_band as f64 / samples.len() as f64 > 0.5,
            "most sites should be 15-20 hops away, got {in_band}/1000"
        );
    }

    #[test]
    fn rtt_samples_match_figure1_calibration() {
        let mut rng = SimRng::new(2);
        let mut ms: Vec<f64> = (0..2000)
            .map(|_| sample_rtt(&mut rng).as_millis_f64())
            .collect();
        ms.sort_by(f64::total_cmp);
        let median = ms[ms.len() / 2];
        assert!((30.0..=50.0).contains(&median), "median = {median}");
        assert!(*ms.last().unwrap() <= 160.0 + 1e-9);
        assert!(*ms.first().unwrap() >= 15.0 - 1e-9);
    }

    #[test]
    fn scenario_builds_with_six_sites() {
        let mut sim = Simulation::new(3);
        let mut rng = SimRng::new(3);
        let scenario = InternetScenario::build(&mut sim, &mut rng, &ScenarioConfig::default());
        assert_eq!(scenario.sites.len(), 6);
        for site in &scenario.sites {
            assert!((10..=30).contains(&site.hop_count));
            assert_eq!(site.routers.len(), site.hop_count - 2);
            assert!(site.bottleneck_bps <= 10_000_000);
        }
        // All addresses distinct is enforced by construction (asserted
        // inside add_host); spot-check the route out of the client.
        assert!(sim
            .core()
            .node(scenario.client)
            .route(scenario.sites[0].server_addr)
            .is_some());
    }

    #[test]
    fn different_seeds_give_different_paths() {
        let paths: Vec<usize> = [10u64, 20]
            .iter()
            .map(|&seed| {
                let mut sim = Simulation::new(seed);
                let mut rng = SimRng::new(seed);
                let sc = InternetScenario::build(&mut sim, &mut rng, &ScenarioConfig::default());
                sc.sites.iter().map(|s| s.hop_count).sum()
            })
            .collect();
        assert_ne!(paths[0], paths[1]);
    }
}
