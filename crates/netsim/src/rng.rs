//! The simulator's own deterministic random number generator.
//!
//! `xoshiro256**` seeded through SplitMix64, implemented here (rather
//! than depending on a `rand` backend) so that experiment results are
//! bit-reproducible for a given seed regardless of dependency versions.
//! Each component that needs randomness gets a *forked* sub-stream via
//! [`SimRng::fork`], so adding a consumer never perturbs the draws seen
//! by existing consumers — the classic trap in seeded simulations.

/// Deterministic RNG: xoshiro256** with SplitMix64 seeding.
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
    /// Cached second normal deviate from Box-Muller.
    spare_normal: Option<f64>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SimRng {
    /// Seed a generator. Any seed (including 0) is valid.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        SimRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
            spare_normal: None,
        }
    }

    /// Derive an independent sub-stream labelled by `stream`.
    ///
    /// Forking with different labels from the same parent yields
    /// decorrelated generators; forking with the same label twice yields
    /// identical ones (useful for replay).
    pub fn fork(&self, stream: u64) -> SimRng {
        // Mix the label into the parent state through SplitMix64.
        let mut sm = self.s[0] ^ self.s[2] ^ stream.wrapping_mul(0xd6e8_feb8_6659_fd93);
        SimRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
            spare_normal: None,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`. `lo == hi` returns `lo`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        lo + self.f64() * (hi - lo)
    }

    /// Uniform integer in `[lo, hi]` (inclusive), unbiased via rejection.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        let span = span + 1;
        // Rejection sampling over the largest multiple of `span`.
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let v = self.next_u64();
            if v < zone {
                return lo + v % span;
            }
        }
    }

    /// Uniform usize in `[0, n)`; panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index() needs a non-empty range");
        self.range_u64(0, n as u64 - 1) as usize
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.f64() < p
        }
    }

    /// Standard normal deviate (Box-Muller, with caching of the pair).
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Avoid log(0).
        let u1 = loop {
            let u = self.f64();
            if u > 0.0 {
                break u;
            }
        };
        let u2 = self.f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * core::f64::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal deviate with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }

    /// Exponential deviate with the given mean (> 0).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        let u = loop {
            let u = self.f64();
            if u > 0.0 {
                break u;
            }
        };
        -mean * u.ln()
    }

    /// Log-normal deviate parameterised by the *underlying* normal's
    /// `mu` and `sigma`.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.standard_normal()).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_is_stable_and_decorrelated() {
        let parent = SimRng::new(7);
        let mut c1 = parent.fork(1);
        let mut c1_again = parent.fork(1);
        let mut c2 = parent.fork(2);
        for _ in 0..32 {
            assert_eq!(c1.next_u64(), c1_again.next_u64());
        }
        let mut c1 = parent.fork(1);
        let same = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::new(3);
        for _ in 0..10_000 {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn range_u64_respects_bounds_and_hits_ends() {
        let mut r = SimRng::new(4);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let v = r.range_u64(5, 9);
            assert!((5..=9).contains(&v));
            seen_lo |= v == 5;
            seen_hi |= v == 9;
        }
        assert!(seen_lo && seen_hi);
        assert_eq!(r.range_u64(3, 3), 3);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn chance_frequency_is_roughly_p() {
        let mut r = SimRng::new(6);
        let hits = (0..100_000).filter(|_| r.chance(0.3)).count();
        let freq = hits as f64 / 100_000.0;
        assert!((freq - 0.3).abs() < 0.01, "freq = {freq}");
    }

    #[test]
    fn normal_moments() {
        let mut r = SimRng::new(8);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean = {mean}");
        assert!((var - 4.0).abs() < 0.15, "var = {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut r = SimRng::new(9);
        let n = 100_000;
        let mean = (0..n).map(|_| r.exponential(0.5)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn log_normal_is_positive() {
        let mut r = SimRng::new(10);
        for _ in 0..1000 {
            assert!(r.log_normal(0.0, 1.0) > 0.0);
        }
    }

    #[test]
    fn index_covers_range() {
        let mut r = SimRng::new(11);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[r.index(5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn index_rejects_empty() {
        SimRng::new(0).index(0);
    }
}
