//! The CLI subcommand implementations.

use crate::{
    background_of, class_of, engine_of, pair_of, scheduler_of, seed_of, shards_of, threads_of,
};
use std::collections::HashMap;
use turb_media::PlayerId;
use turb_netsim::{EngineKind, FluidDiag, SchedulerKind, ShardDiag, ShardKind};
use turb_obs::ScopeTimer;
use turbulence::{figures, report, runner, tables, PairRunConfig};

type Flags = HashMap<String, String>;

/// `--loss P`, validated to a probability.
fn loss_of(flags: &Flags) -> Result<Option<f64>, String> {
    let Some(raw) = flags.get("loss") else {
        return Ok(None);
    };
    let loss: f64 = raw.parse().map_err(|_| format!("bad --loss {raw:?}"))?;
    if !(0.0..=1.0).contains(&loss) {
        return Err(format!("--loss {loss} out of range (0..=1)"));
    }
    Ok(Some(loss))
}

/// `turbulence corpus`: run everything and print the digests.
pub fn corpus(flags: &Flags) -> Result<(), String> {
    let seed = seed_of(flags)?;
    let threads = threads_of(flags)?;
    let telemetry = flags.contains_key("telemetry");
    let scheduler = scheduler_of(flags)?;
    let shards = shards_of(flags)?;
    let mut configs = match flags.get("sets") {
        None => runner::corpus_configs(seed),
        Some(list) => {
            let sets: Vec<u8> = list
                .split(',')
                .map(|s| s.trim().parse().map_err(|_| format!("bad set {s:?}")))
                .collect::<Result<_, _>>()?;
            runner::corpus_configs_for_sets(seed, &sets)
        }
    };
    let engine = engine_of(flags)?;
    let background = background_of(flags)?;
    let progress = flags.contains_key("progress");
    for config in &mut configs {
        config.telemetry = telemetry;
        config.scheduler = scheduler;
        config.shards = shards;
        config.engine = engine;
        config.background_flows = background;
        config.progress = progress;
    }
    let result = runner::run_configs_parallel(&configs, threads);
    println!(
        "{} pair runs completed (seed {seed}, {} worker thread{}).\n",
        result.runs.len(),
        result.threads,
        if result.threads == 1 { "" } else { "s" },
    );

    // Table 1.
    let rows: Vec<Vec<String>> = tables::table1_measured(&result)
        .iter()
        .map(|r| {
            vec![
                r.set.to_string(),
                r.label.clone(),
                format!("{:.1}/{:.1}", r.real_encoded, r.wmp_encoded),
                match (r.real_measured, r.wmp_measured) {
                    (Some(a), Some(b)) => format!("{a:.1}/{b:.1}"),
                    _ => "-".into(),
                },
                r.content.to_string(),
                format!("{:.0}s", r.duration_secs),
            ]
        })
        .collect();
    println!(
        "{}",
        report::table(
            "Table 1 (encoded vs measured playback, Kbit/s)",
            &[
                "set",
                "pair",
                "encoded R/M",
                "measured R/M",
                "content",
                "len"
            ],
            &rows
        )
    );

    // Headline figures.
    let rtt = figures::fig01_rtt_cdf(&result);
    println!("{}", report::cdf_quantiles("Figure 1: RTT CDF", &rtt, "ms"));
    let hops = figures::fig02_hops_cdf(&result);
    println!(
        "{}",
        report::cdf_quantiles("Figure 2: hop-count CDF", &hops, "hops")
    );
    println!(
        "{}",
        report::scatter(
            "Figure 5: WMP fragmentation vs encoded rate",
            "Kbit/s",
            "fragment fraction",
            &figures::fig05_fragmentation(&result)
        )
    );
    println!(
        "{}",
        report::scatter(
            "Figure 11: Real buffering/playout ratio vs encoding rate",
            "Kbit/s",
            "ratio",
            &figures::fig11_buffering_ratio(&result)
        )
    );
    if telemetry {
        // Per-run wall clock first: which pairs dominate the corpus time.
        let rows: Vec<Vec<String>> = result
            .runs
            .iter()
            .filter_map(|run| {
                let t = run.telemetry.as_ref()?;
                Some(vec![
                    t.report.label.clone(),
                    format!("{:.1}", t.report.wall_ns as f64 / 1e6),
                    format!("{:.0}", t.report.events_per_sec()),
                ])
            })
            .collect();
        if !rows.is_empty() {
            println!(
                "{}",
                report::table(
                    "Per-run wall clock",
                    &["run", "wall ms", "events/sec"],
                    &rows
                )
            );
        }
        if let Some(report) = result.aggregate_report() {
            println!("{}", report.render_table());
        }
    }
    Ok(())
}

/// `turbulence pair`: one run, human summary, optional pcap.
pub fn pair(flags: &Flags) -> Result<(), String> {
    let seed = seed_of(flags)?;
    let (set, pair) = pair_of(flags)?;
    let mut config = PairRunConfig::new(seed, set, pair).with_scheduler(scheduler_of(flags)?);
    if let Some(loss) = loss_of(flags)? {
        config.access_loss = loss;
    }
    config.telemetry = flags.contains_key("telemetry");
    config.shards = shards_of(flags)?;
    config.engine = engine_of(flags)?;
    config.background_flows = background_of(flags)?;
    let result = turbulence::run_pair(&config);

    println!(
        "path: {} hops to {}, ping median {:.1} ms, route stable: {}",
        result
            .tracert_before
            .hop_count()
            .map(|h| h.to_string())
            .unwrap_or_else(|| "?".into()),
        result.server_addr,
        result
            .ping_before
            .median_rtt()
            .map(|r| r.as_millis_f64())
            .unwrap_or(f64::NAN),
        result.route_stable(),
    );
    for log in [&result.real, &result.wmp] {
        println!(
            "{:>7}: encoded {:>6.1}K | playback {:>6.1}K | {:>4.1} fps | streamed {:>5.1}s/{:>3.0}s | lost {}",
            log.clip.name(),
            log.clip.encoded_kbps,
            log.avg_playback_kbps(),
            log.avg_frame_rate(),
            log.streaming_duration_secs().unwrap_or(f64::NAN),
            log.clip.duration_secs,
            log.packets_lost,
        );
    }
    for player in [PlayerId::RealPlayer, PlayerId::MediaPlayer] {
        let stats = turbulence::analysis::stream_groups(&result, player).stats();
        println!(
            "{:>7}: {} wire packets, {} datagrams, {:.0}% IP fragments",
            player.label(),
            stats.total_packets,
            stats.groups,
            stats.fragment_fraction() * 100.0
        );
    }
    if let Some(path) = flags.get("pcap") {
        let mut file = std::fs::File::create(path).map_err(|e| format!("create {path}: {e}"))?;
        turb_capture::pcap::write_pcap(&mut file, result.capture.records())
            .map_err(|e| format!("write {path}: {e}"))?;
        println!(
            "capture: {} packets written to {path}",
            result.capture.len()
        );
    }
    if let Some(telemetry) = &result.telemetry {
        println!("\n{}", telemetry.report.render_table());
    }
    Ok(())
}

/// `turbulence obs`: one pair run with telemetry on, report printed.
pub fn obs(flags: &Flags) -> Result<(), String> {
    let seed = seed_of(flags)?;
    let (set, pair) = pair_of(flags)?;
    let mut config = PairRunConfig::new(seed, set, pair)
        .with_telemetry()
        .with_scheduler(scheduler_of(flags)?);
    if let Some(loss) = loss_of(flags)? {
        config.access_loss = loss;
    }
    config.shards = shards_of(flags)?;
    config.engine = engine_of(flags)?;
    config.background_flows = background_of(flags)?;
    if flags.contains_key("rollups") {
        config = config.with_sessions();
    }
    config.progress = flags.contains_key("progress");
    let result = turbulence::run_pair(&config);
    let telemetry = result
        .telemetry
        .as_ref()
        .expect("telemetry was requested for this run");
    println!("{}", telemetry.report.render_table());
    if let Some(sessions) = &telemetry.sessions {
        println!("per-class session QoE (rollups):");
        print!("{}", sessions.summary_table());
    }
    let sched = telemetry.sched;
    println!(
        "  scheduler       {:>12} ({} slots touched / {} cascades / {} overflow entries)",
        telemetry.scheduler.name(),
        sched.slots_touched,
        sched.cascades,
        sched.overflow_events,
    );
    if let Some(diag) = &telemetry.shards {
        print!("{}", render_shard_diag(diag));
    }
    if let Some(diag) = &telemetry.fluid {
        print!("{}", render_fluid_diag(diag));
    }
    if flags.contains_key("metrics") {
        println!("{}", telemetry.metrics.render_text());
    }
    if let Some(path) = flags.get("trace") {
        std::fs::write(path, &telemetry.trace_jsonl).map_err(|e| format!("write {path}: {e}"))?;
        let lines = telemetry.trace_jsonl.lines().count();
        println!("trace: {lines} events written to {path}");
    }
    Ok(())
}

/// `turbulence figures`: full data rows per figure.
pub fn figures_cmd(flags: &Flags) -> Result<(), String> {
    let seed = seed_of(flags)?;
    let scheduler = scheduler_of(flags)?;
    let shards = shards_of(flags)?;
    let engine = engine_of(flags)?;
    let background = background_of(flags)?;
    let mut configs = runner::corpus_configs(seed);
    for config in &mut configs {
        config.scheduler = scheduler;
        config.shards = shards;
        config.engine = engine;
        config.background_flows = background;
    }
    let result = runner::run_configs_parallel(&configs, threads_of(flags)?);
    let fig3 = figures::fig03_playback_vs_encoding(&result);
    println!(
        "{}",
        report::scatter(
            "Figure 3 Real points",
            "encoded",
            "playback",
            &fig3.real_points
        )
    );
    println!(
        "{}",
        report::scatter(
            "Figure 3 WMP points",
            "encoded",
            "playback",
            &fig3.wmp_points
        )
    );
    println!(
        "{}",
        report::series_digest(
            "Figure 4: packet arrivals (set 5 high, 30-31s)",
            &figures::fig04_packet_arrivals(&result),
            40
        )
    );
    println!(
        "{}",
        report::series_digest(
            "Figure 10: bandwidth vs time (set 1)",
            &figures::fig10_bandwidth_timeseries(&result),
            30
        )
    );
    println!(
        "{}",
        report::series_digest(
            "Figure 13: frame rate vs time (set 5)",
            &figures::fig13_framerate_timeseries(&result),
            30
        )
    );
    let f14 = figures::fig14_framerate_vs_encoding(&result);
    println!(
        "{}",
        report::scatter("Figure 14 Real", "encoded Kbps", "fps", &f14.real_points)
    );
    println!(
        "{}",
        report::scatter("Figure 14 WMP", "encoded Kbps", "fps", &f14.wmp_points)
    );
    for (label, validation) in figures::sec4_flowgen_validation(&result, seed) {
        println!(
            "Section IV {label}: K-S sizes {:.3}, gaps {:.3}, pass {}",
            validation.ks_sizes,
            validation.ks_gaps,
            validation.passes(0.1)
        );
    }
    Ok(())
}

/// Render a [`ShardDiag`] in the `obs` report's indent style.
fn render_shard_diag(diag: &ShardDiag) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let lookahead = if diag.lookahead_ns == u64::MAX {
        "unbounded".to_string()
    } else {
        format!("{:.3} ms", diag.lookahead_ns as f64 / 1e6)
    };
    let _ = writeln!(
        out,
        "  shards          {:>12} (lookahead {lookahead} / {} barriers / {} transits / max batch {} / {} reallocs)",
        diag.shards, diag.barriers, diag.transits, diag.max_exchange_depth, diag.exchange_reallocs,
    );
    for d in &diag.per_domain {
        let _ = writeln!(
            out,
            "    domain {:>2}     {:>6} nodes | {:>10} events | queue depth {:>6} | {} slots / {} cascades",
            d.domain, d.nodes, d.events_processed, d.max_queue_depth, d.sched.slots_touched, d.sched.cascades,
        );
    }
    out
}

/// Render a [`FluidDiag`] in the `obs` report's indent style.
fn render_fluid_diag(diag: &FluidDiag) -> String {
    format!(
        "  fluid           {:>12} flows ({} breakpoints / {} recomputes / {} updates applied of {} scheduled / peak {:.3} Mbit/s on one link)\n",
        diag.flows,
        diag.breakpoints,
        diag.recomputes,
        diag.updates_applied,
        diag.updates_scheduled,
        diag.peak_link_fluid_bps as f64 / 1e6,
    )
}

/// `turbulence scale`: the replicated-client scale scenario run
/// sequentially and sharded back to back — byte-identity asserted via
/// result digests, speedup and partition diagnostics printed.
pub fn scale(flags: &Flags) -> Result<(), String> {
    use turb_netsim::topology::ScaleConfig;
    use turbulence::scale::{run_scale, ScaleRunConfig};

    let seed = seed_of(flags)?;
    let mut scenario = ScaleConfig::default();
    if let Some(raw) = flags.get("clients") {
        scenario.clients_per_group = raw.parse().map_err(|_| format!("bad --clients {raw:?}"))?;
    }
    if let Some(raw) = flags.get("groups") {
        scenario.groups = raw.parse().map_err(|_| format!("bad --groups {raw:?}"))?;
    }
    if let Some(raw) = flags.get("packets") {
        scenario.packets_per_client = raw.parse().map_err(|_| format!("bad --packets {raw:?}"))?;
    }
    scenario.background_flows = background_of(flags)? as usize;
    scenario.engine = engine_of(flags)?;
    // Default to one domain per group: the ring cuts are the natural
    // partition, and more domains than groups would split a group's
    // zero-latency access links.
    let shard_n = match shards_of(flags)? {
        ShardKind::Sharded(n) => n,
        ShardKind::Sequential => scenario.groups as u16,
    };
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let progress = flags.contains_key("progress");
    let sequential = run_scale(&ScaleRunConfig {
        seed,
        scenario: scenario.clone(),
        shards: ShardKind::Sequential,
        progress,
    });
    let sharded = run_scale(&ScaleRunConfig {
        seed,
        scenario: scenario.clone(),
        shards: ShardKind::Sharded(shard_n),
        progress,
    });
    let identical = sequential.digest == sharded.digest;
    let speedup = sequential.wall_ns as f64 / sharded.wall_ns.max(1) as f64;

    println!(
        "scale: {} groups x {} clients, {} datagrams offered, {} background flows ({} engine, {} cpus available)",
        scenario.groups,
        scenario.clients_per_group,
        scenario.groups as u64
            * scenario.clients_per_group as u64
            * u64::from(scenario.packets_per_client),
        scenario.background_flows,
        scenario.engine.name(),
        cpus,
    );
    println!(
        "scale: {:<12} {:>8.1} ms | {:>10} events | digest {:016x}",
        "sequential",
        sequential.wall_ns as f64 / 1e6,
        sequential.events_processed,
        sequential.digest,
    );
    println!(
        "scale: {:<12} {:>8.1} ms | {:>10} events | digest {:016x}",
        format!("sharded({shard_n})"),
        sharded.wall_ns as f64 / 1e6,
        sharded.events_processed,
        sharded.digest,
    );
    println!("scale: speedup {speedup:.2}x | identical {identical}");
    if let Some(diag) = &sharded.diag {
        print!("{}", render_shard_diag(diag));
    }
    if let Some(diag) = &sequential.fluid {
        print!("{}", render_fluid_diag(diag));
    }
    // With hybrid background flows, also time the honest all-packet
    // twin (same scenario, background as real datagram streams) so the
    // fluid engine's speedup is measured, not asserted.
    if scenario.engine == EngineKind::Hybrid && scenario.background_flows > 0 {
        let packet_twin = run_scale(&ScaleRunConfig {
            seed,
            scenario: ScaleConfig {
                engine: EngineKind::Packet,
                ..scenario.clone()
            },
            shards: ShardKind::Sequential,
            progress: false,
        });
        let hybrid_speedup = packet_twin.wall_ns as f64 / sequential.wall_ns.max(1) as f64;
        println!(
            "scale: {:<12} {:>8.1} ms | {:>10} events | {} background datagrams delivered",
            "all-packet",
            packet_twin.wall_ns as f64 / 1e6,
            packet_twin.events_processed,
            packet_twin.background_datagrams,
        );
        println!(
            "scale: hybrid speedup {hybrid_speedup:.2}x over all-packet at {} background flows",
            scenario.background_flows,
        );
    }
    if !identical {
        return Err("sharded scale run diverged from sequential".to_string());
    }
    Ok(())
}

/// Shared flag parsing for `fleet` and the bench fleet phase.
fn fleet_config_of(flags: &Flags) -> Result<turbulence::FleetRunConfig, String> {
    use turbulence::{ArrivalProcess, DurationDist, FleetRunConfig};
    let mut config = FleetRunConfig::new(seed_of(flags)?);
    if let Some(raw) = flags.get("sessions") {
        config.sessions = raw.parse().map_err(|_| format!("bad --sessions {raw:?}"))?;
        if config.sessions == 0 {
            return Err("--sessions must be at least 1".into());
        }
    }
    if let Some(raw) = flags.get("arrival") {
        config.arrival = ArrivalProcess::parse(raw)?;
    }
    if let Some(raw) = flags.get("duration-dist") {
        config.duration = DurationDist::parse(raw)?;
    }
    config.diurnal = flags.contains_key("diurnal");
    if let Some(raw) = flags.get("groups") {
        config.groups = raw.parse().map_err(|_| format!("bad --groups {raw:?}"))?;
    }
    if let Some(raw) = flags.get("wmp-permille") {
        config.wmp_permille = raw
            .parse()
            .map_err(|_| format!("bad --wmp-permille {raw:?}"))?;
    }
    // For the fleet, `--background` is the background-class share of
    // the population, per 1000 sessions.
    if flags.contains_key("background") {
        config.background_permille = background_of(flags)?;
        if config.background_permille > 1000 {
            return Err("--background is per 1000 sessions (0..=1000)".into());
        }
    }
    config.shards = shards_of(flags)?;
    config.engine = engine_of(flags)?;
    config.threads = threads_of(flags)?;
    config.lineage = flags.contains_key("lineage");
    config.rollups = flags.contains_key("rollups");
    if let Some(raw) = flags.get("sample-permille") {
        config.sample_permille = raw
            .parse()
            .map_err(|_| format!("bad --sample-permille {raw:?}"))?;
        if config.sample_permille > 1000 {
            return Err("--sample-permille is per 1000 sessions (0..=1000)".into());
        }
    }
    config.progress = flags.contains_key("progress");
    Ok(config)
}

/// `turbulence fleet`: a session population — Poisson/MMPP arrivals,
/// heavy-tailed lifetimes — multiplexed over the scale ring, with the
/// heavy-traffic figures printed and (when sharded) byte-identity
/// against the sequential twin asserted.
pub fn fleet(flags: &Flags) -> Result<(), String> {
    use turbulence::population::run_fleet;
    let config = fleet_config_of(flags)?;
    let result = run_fleet(&config);
    println!(
        "fleet: {} sessions over {} groups | {:?} arrivals | {:?} lifetimes{} | {} engine",
        result.sessions,
        config.groups,
        config.arrival,
        config.duration,
        if config.diurnal { " | diurnal" } else { "" },
        config.engine.name(),
    );
    println!(
        "fleet: {:>8.1} ms | {:>10} events | digest {:016x}",
        result.wall_ns as f64 / 1e6,
        result.events_processed,
        result.digest,
    );
    println!(
        "fleet: fg {}/{} datagrams delivered | bg {}/{} | loss fg {:.4} bg {:.4}",
        result.fg_delivered,
        result.fg_offered,
        result.bg_delivered,
        result.bg_offered,
        1.0 - result.fg_delivered as f64 / result.fg_offered.max(1) as f64,
        1.0 - result.bg_delivered as f64 / result.bg_offered.max(1) as f64,
    );
    if let Some(diag) = &result.diag {
        print!("{}", render_shard_diag(diag));
    }
    if let Some(diag) = &result.fluid {
        print!("{}", render_fluid_diag(diag));
    }
    // Sharded runs are checked against their sequential twin, the same
    // byte-identity contract the scale command enforces.
    if result.diag.is_some() {
        let twin = run_fleet(&turbulence::FleetRunConfig {
            shards: ShardKind::Sequential,
            ..config.clone()
        });
        if twin.digest != result.digest {
            return Err("sharded fleet run diverged from sequential".to_string());
        }
        println!("fleet: identical true (sequential twin digest matches)");
    }
    println!();
    print!("{}", result.figures);
    if let Some(dump) = &result.rollups {
        println!("\n## per-class session QoE (rollups)");
        print!("{}", dump.summary_table());
    }
    if flags.contains_key("metrics") {
        println!();
        print!("{}", result.metrics);
    }
    Ok(())
}

/// `turbulence sessions`: the fleet-scale QoE view. Runs the fleet
/// scenario with rollups forced on and renders the per-class summary,
/// per-class QoE CDFs (startup, rebuffer, loss, goodput), and the
/// top-K worst sessions under a composable `--by` badness key.
/// `--session ID` drills into a sampled session's lineage timeline;
/// `--jsonl`/`--csv` export the full rollup table deterministically.
pub fn sessions(flags: &Flags) -> Result<(), String> {
    use turb_obs::lineage::{SpanOutcome, Stage};
    use turb_obs::BadnessKey;
    use turb_stats::Cdf;
    use turbulence::population::run_fleet;

    let mut config = fleet_config_of(flags)?;
    config.rollups = true;
    let by = match flags.get("by") {
        None => BadnessKey::default(),
        Some(raw) => BadnessKey::parse(raw)?,
    };
    let top: usize = match flags.get("top") {
        None => 10,
        Some(raw) => raw.parse().map_err(|_| format!("bad --top {raw:?}"))?,
    };
    let drill: Option<u32> = match flags.get("session") {
        None => None,
        Some(raw) => Some(raw.parse().map_err(|_| format!("bad --session {raw:?}"))?),
    };

    let result = run_fleet(&config);
    let dump = result
        .rollups
        .as_ref()
        .expect("rollups are forced on for this command");

    // Exports first: the files are the machine-readable contract; the
    // rendering below is for humans.
    if let Some(path) = flags.get("jsonl") {
        std::fs::write(path, dump.to_jsonl()).map_err(|e| format!("write {path}: {e}"))?;
        println!("sessions: rollup JSONL written to {path}");
    }
    if let Some(path) = flags.get("csv") {
        std::fs::write(path, dump.to_csv()).map_err(|e| format!("write {path}: {e}"))?;
        println!("sessions: rollup CSV written to {path}");
    }

    // Rollups are accumulated at event time from the same callbacks
    // that feed the always-on counters, so they must reconcile 1:1.
    let totals = dump.totals();
    if totals.datagrams_sent != result.fg_offered + result.bg_offered {
        return Err(format!(
            "rollups sent {} datagrams but the offered-load counters say {}",
            totals.datagrams_sent,
            result.fg_offered + result.bg_offered,
        ));
    }
    if totals.datagrams_delivered != result.fg_delivered + result.bg_delivered {
        return Err(format!(
            "rollups delivered {} datagrams but the ledger says {}",
            totals.datagrams_delivered,
            result.fg_delivered + result.bg_delivered,
        ));
    }
    if dump.unknown_session_events != 0 {
        return Err(format!(
            "{} events carried an unregistered session id",
            dump.unknown_session_events,
        ));
    }

    println!(
        "sessions: {} sessions | {:>8.1} ms | digest {:016x} | rollups {} KiB ({:.1} B/session) | counters reconcile 1:1",
        result.sessions,
        result.wall_ns as f64 / 1e6,
        result.digest,
        result.session_memory_bytes / 1024,
        result.session_memory_bytes as f64 / result.sessions.max(1) as f64,
    );
    match &result.lineage {
        Some(lin) => {
            let status = if lin.dropped == 0 {
                "recorder never evicted".to_string()
            } else {
                format!("recorder evicted {} events", lin.dropped)
            };
            println!(
                "sessions: sampled lineage on {} spans / {} events ({}‰ of sessions, seed-keyed) | {status}",
                lin.origins.len(),
                lin.events.len(),
                if config.lineage { 1000 } else { config.sample_permille },
            );
            if lin.dropped > 0 {
                return Err(format!(
                    "lineage recorder evicted {} events; lower --sample-permille",
                    lin.dropped,
                ));
            }
        }
        None => println!("sessions: lineage sampling off (--sample-permille 0)"),
    }

    println!("\n## per-class session QoE (rollups)");
    print!("{}", dump.summary_table());

    // Per-class QoE CDFs from the individual rollups. Startup and
    // rebuffer could also come from the class sketches; sampling the
    // rollups directly keeps all four metrics on one exact footing.
    for (c, name) in dump.class_names.iter().enumerate() {
        let members = || {
            dump.rollups
                .iter()
                .zip(&dump.class_of)
                .filter(move |(_, &rc)| usize::from(rc) == c)
                .map(|(r, _)| r)
        };
        if members().next().is_none() {
            continue;
        }
        let startup_ms: Vec<f64> = members()
            .filter_map(|r| r.startup_ns())
            .map(|ns| ns as f64 / 1e6)
            .collect();
        let rebuffer_ms: Vec<f64> = members().map(|r| r.rebuffer_ns as f64 / 1e6).collect();
        let loss_pct: Vec<f64> = members().map(|r| r.loss_fraction() * 100.0).collect();
        let goodput_kbps: Vec<f64> = members()
            .filter_map(|r| r.mean_rate_bps())
            .map(|bps| bps as f64 / 1e3)
            .collect();
        for (what, unit, values) in [
            ("startup", "ms", &startup_ms),
            ("rebuffer", "ms", &rebuffer_ms),
            ("loss", "%", &loss_pct),
            ("goodput", "kbit/s", &goodput_kbps),
        ] {
            if values.is_empty() {
                continue;
            }
            println!(
                "{}",
                report::cdf_quantiles(
                    &format!("{name}: {what} CDF"),
                    &Cdf::from_samples(values),
                    unit,
                )
            );
        }
    }

    // Top-K worst sessions under the badness key — the triage list.
    let worst = dump.worst(top, &by);
    let sampler = (config.sample_permille > 0 && !config.lineage)
        .then(|| turb_obs::SessionSampler::new(config.seed, config.sample_permille));
    let rows: Vec<Vec<String>> = worst
        .iter()
        .map(|&(id, score)| {
            let r = &dump.rollups[id as usize];
            let sampled = config.lineage || sampler.as_ref().is_some_and(|s| s.admits(id));
            vec![
                id.to_string(),
                dump.class_names[usize::from(dump.class_of[id as usize])].clone(),
                format!("{score:.3}"),
                format!("{:.3}", r.loss_fraction() * 100.0),
                format!("{:.1}", r.rebuffer_ns as f64 / 1e6),
                r.startup_ns()
                    .map_or("-".to_string(), |ns| format!("{:.1}", ns as f64 / 1e6)),
                r.mean_rate_bps()
                    .map_or("-".to_string(), |bps| format!("{:.1}", bps as f64 / 1e3)),
                if sampled { "yes" } else { "" }.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        report::table(
            &format!("Top {} worst sessions by {}", worst.len(), by.spec()),
            &[
                "id",
                "class",
                "score",
                "loss %",
                "rebuf ms",
                "startup ms",
                "kbit/s",
                "sampled"
            ],
            &rows,
        )
    );

    // Drill-down: the sampled session's full per-packet lineage.
    if let Some(sid) = drill {
        if usize::try_from(sid).unwrap() >= dump.rollups.len() {
            return Err(format!(
                "--session {sid} out of range (fleet has {} sessions)",
                dump.rollups.len(),
            ));
        }
        if !(config.lineage || sampler.as_ref().is_some_and(|s| s.admits(sid))) {
            let examples: Vec<String> = sampler
                .as_ref()
                .map(|s| {
                    (0..result.sessions as u32)
                        .filter(|&id| s.admits(id))
                        .take(8)
                        .map(|id| id.to_string())
                        .collect()
                })
                .unwrap_or_default();
            return Err(format!(
                "session {sid} is not in the sampled set; sampled ids start {:?} \
                 (raise --sample-permille, up to 1000, to widen the set)",
                examples,
            ));
        }
        let lin = result
            .lineage
            .as_ref()
            .expect("sampled sessions carry lineage");
        println!("\n## session {sid} lineage timeline");
        let mut printed = 0usize;
        for tl in lin.reconstruct() {
            let origin = &lin.origins[tl.span as usize];
            let meta = match origin.meta {
                Some(meta) if meta.sequence == sid => meta,
                _ => continue,
            };
            let outcome = match tl.outcome {
                SpanOutcome::Dropped(cause) => format!("dropped:{}", cause.label()),
                other => other.label().to_string(),
            };
            let e2e = tl
                .first_time(|s| s == Stage::Delivered)
                .map_or("      -".to_string(), |t| {
                    format!("{:>7.3}", (t - origin.time_ns) as f64 / 1e6)
                });
            println!(
                "  pkt {:>6} @ {:>10.3} ms  e2e {e2e} ms  {} hops  {}",
                meta.media_time_ms,
                origin.time_ns as f64 / 1e6,
                tl.hops(),
                outcome,
            );
            for ev in &tl.events {
                println!(
                    "      {:>10.3} ms  {:<11} {}",
                    ev.time_ns as f64 / 1e6,
                    ev.stage.label(),
                    lin.component(ev.comp),
                );
            }
            printed += 1;
        }
        if printed == 0 {
            println!("  (session sent no packets inside the horizon)");
        } else {
            println!("  {printed} packets");
        }
    }
    Ok(())
}

/// Pull `"key": <integer>` out of a previously written bench JSON.
/// Hand-rolled like the writer below: the workspace deliberately
/// carries no serde, and the file's shape is entirely our own.
fn json_u64(json: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\": ");
    let at = json.find(&needle)? + needle.len();
    let digits: &str = &json[at..at + json[at..].find(|c: char| !c.is_ascii_digit())?];
    digits.parse().ok()
}

/// `turbulence bench`: time the corpus sequentially and with the
/// worker pool, re-run it on the other event-queue engine, verify all
/// three produce identical figures, and write a machine-readable JSON
/// summary (CI uploads it as an artifact). When the output file
/// already exists — the committed baseline — the speedup against it is
/// printed before it is overwritten.
pub fn bench(flags: &Flags) -> Result<(), String> {
    let seed = seed_of(flags)?;
    let threads_requested = threads_of(flags)?;
    let quick = flags.contains_key("quick");
    let scheduler = scheduler_of(flags)?;
    let out = flags
        .get("out")
        .cloned()
        .unwrap_or_else(|| "BENCH_corpus.json".to_string());
    let baseline = std::fs::read_to_string(&out)
        .ok()
        .and_then(|json| json_u64(&json, "sequential"));
    // `--gate` fails the run when sequential time regresses more than
    // 25% per pair run against a committed baseline file (`--baseline`,
    // defaulting to the output path before it is overwritten). The
    // comparison is normalised per pair run so a `--quick` CI bench can
    // gate against the committed full-corpus baseline.
    let gate = flags.contains_key("gate");
    let gate_path = flags
        .get("baseline")
        .cloned()
        .unwrap_or_else(|| out.clone());
    let gate_baseline = std::fs::read_to_string(&gate_path).ok().and_then(|json| {
        Some((
            json_u64(&json, "sequential")?,
            json_u64(&json, "pair_runs")?,
        ))
    });
    if gate && gate_baseline.is_none() {
        return Err(format!(
            "--gate needs a baseline with sequential/pair_runs fields at {gate_path}"
        ));
    }

    let timer = ScopeTimer::start("bench_configs", "bench");
    let mut configs = if quick {
        // CI time budget: the two shortest data sets only.
        runner::corpus_configs_for_sets(seed, &[1, 2])
    } else {
        runner::corpus_configs(seed)
    };
    for config in &mut configs {
        config.scheduler = scheduler;
    }
    // `0` = auto; report the resolved width, not the request, so the
    // JSON says what actually ran.
    let threads = turbulence::parallel::effective_threads(threads_requested, configs.len());
    let configs_ns = timer.elapsed_ns();

    let timer = ScopeTimer::start("bench_sequential", "bench");
    let sequential = runner::run_configs(&configs);
    let sequential_ns = timer.elapsed_ns();

    let timer = ScopeTimer::start("bench_parallel", "bench");
    let parallel = runner::run_configs_parallel(&configs, threads);
    let parallel_ns = timer.elapsed_ns();

    // The same corpus on the other engine: the wheel-vs-heap A/B that
    // the scheduler swap is judged by.
    let other = match scheduler {
        SchedulerKind::Wheel => SchedulerKind::Heap,
        SchedulerKind::Heap => SchedulerKind::Wheel,
    };
    let mut alt_configs = configs.clone();
    for config in &mut alt_configs {
        config.scheduler = other;
    }
    let timer = ScopeTimer::start("bench_alternate", "bench");
    let alternate = runner::run_configs(&alt_configs);
    let alternate_ns = timer.elapsed_ns();

    let timer = ScopeTimer::start("bench_figures", "bench");
    let digest = figures::digest(&sequential);
    let identical = digest == figures::digest(&parallel);
    let schedulers_identical = digest == figures::digest(&alternate);
    let figures_ns = timer.elapsed_ns();

    // Watch phase: one pair run with the windowed time-series recorder
    // on, so recorder growth (series, retained windows, memory) shows
    // up in the perf trajectory alongside run time.
    let timer = ScopeTimer::start("bench_watch", "bench");
    let watch_config = configs[0].clone().with_timeseries(0);
    let watch_run = turbulence::run_pair(&watch_config);
    let watch_telemetry = watch_run
        .telemetry
        .as_ref()
        .expect("bench watch run requested telemetry");
    // The registry's text render depends on keys staying sorted as
    // they are inserted rather than re-sorting per call; assert the
    // invariant where the perf gate will notice a regression.
    assert!(
        watch_telemetry.metrics.keys_are_sorted(),
        "metrics registry keys lost their sorted order"
    );
    let watch_series = watch_telemetry
        .series
        .as_ref()
        .expect("bench watch run requested time-series");
    let watch_series_count = watch_series.series.len();
    let watch_windows = watch_series.window_count();
    let watch_memory_bytes = watch_series.memory_bytes();
    let watch_ns = timer.elapsed_ns();

    // Shard phase: the replicated-client scale scenario sequential vs
    // sharded — the conservative parallel engine's honest speedup on
    // this machine, plus byte-identity and the zero-realloc claim.
    let timer = ScopeTimer::start("bench_scale", "bench");
    let scale_scenario = if quick {
        turb_netsim::topology::ScaleConfig {
            clients_per_group: 64,
            ..Default::default()
        }
    } else {
        turb_netsim::topology::ScaleConfig::default()
    };
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let scale_shards = scale_scenario.groups as u16;
    let scale_seq = turbulence::run_scale(&turbulence::ScaleRunConfig {
        seed,
        scenario: scale_scenario.clone(),
        shards: ShardKind::Sequential,
        progress: false,
    });
    let scale_shd = turbulence::run_scale(&turbulence::ScaleRunConfig {
        seed,
        scenario: scale_scenario.clone(),
        shards: ShardKind::Sharded(scale_shards),
        progress: false,
    });
    let shards_identical = scale_seq.digest == scale_shd.digest;
    let shard_speedup = scale_seq.wall_ns as f64 / scale_shd.wall_ns.max(1) as f64;
    let scale_diag = scale_shd
        .diag
        .as_ref()
        .expect("sharded scale run exposes diagnostics");
    // Steady-state cross-domain exchange must never outgrow its
    // pre-sized buffers; a realloc here is a perf bug even though the
    // results stay correct.
    assert!(
        scale_diag.exchange_reallocs == 0,
        "shard exchange buffers reallocated {} time(s)",
        scale_diag.exchange_reallocs
    );
    let scale_ns = timer.elapsed_ns();

    // Fluid phase: the same scale scenario carrying N background bulk
    // flows, run all-packet and hybrid back to back (both sequential —
    // this isolates the engine swap from sharding). The packet engine
    // pays per background datagram; the fluid engine pays per rate
    // recompute, so the hybrid speedup grows roughly linearly with N.
    let timer = ScopeTimer::start("bench_fluid", "bench");
    let background_flows = if flags.contains_key("background") {
        background_of(flags)?
    } else {
        2_000
    };
    let fluid_packet = turbulence::run_scale(&turbulence::ScaleRunConfig {
        seed,
        scenario: turb_netsim::topology::ScaleConfig {
            engine: EngineKind::Packet,
            background_flows: background_flows as usize,
            ..scale_scenario.clone()
        },
        shards: ShardKind::Sequential,
        progress: false,
    });
    let fluid_hybrid = turbulence::run_scale(&turbulence::ScaleRunConfig {
        seed,
        scenario: turb_netsim::topology::ScaleConfig {
            engine: EngineKind::Hybrid,
            background_flows: background_flows as usize,
            ..scale_scenario
        },
        shards: ShardKind::Sequential,
        progress: false,
    });
    let fluid_diag = fluid_hybrid
        .fluid
        .expect("hybrid scale run exposes fluid diagnostics");
    assert!(
        fluid_diag.flows == u64::from(background_flows),
        "hybrid run registered {} fluid flows, expected {background_flows}",
        fluid_diag.flows,
    );
    let hybrid_speedup = fluid_packet.wall_ns as f64 / fluid_hybrid.wall_ns.max(1) as f64;
    let fluid_ns = timer.elapsed_ns();

    // Fleet phase: a session population over the ring — the
    // heavy-traffic workload the ROADMAP aims at. Sequential and
    // sharded back to back for byte-identity; the population's
    // steady-state heap cost is bounded by the peak-RSS growth across
    // the sequential run divided by the session count (an upper bound:
    // the high-water mark only moves if the fleet outgrew every
    // earlier phase).
    let timer = ScopeTimer::start("bench_fleet", "bench");
    let fleet_sessions: usize = match flags.get("sessions") {
        Some(raw) => raw.parse().map_err(|_| format!("bad --sessions {raw:?}"))?,
        None if quick => 10_000,
        None => 100_000,
    };
    let fleet_config = turbulence::FleetRunConfig {
        sessions: fleet_sessions,
        ..turbulence::FleetRunConfig::new(seed)
    };
    let fleet_rss_before = turb_obs::peak_rss_bytes();
    let fleet_seq = turbulence::run_fleet(&fleet_config);
    let fleet_rss = turb_obs::peak_rss_bytes();
    let fleet_shd = turbulence::run_fleet(&turbulence::FleetRunConfig {
        shards: ShardKind::Sharded(fleet_config.groups as u16),
        ..fleet_config.clone()
    });
    let fleet_identical = fleet_seq.digest == fleet_shd.digest;
    let fleet_events_per_sec =
        fleet_seq.events_processed.saturating_mul(1_000_000_000) / fleet_seq.wall_ns.max(1);
    let fleet_heap_per_session = fleet_seq.heap_bytes_per_session;
    let fleet_rss_growth = fleet_rss.saturating_sub(fleet_rss_before);
    let fleet_ns = timer.elapsed_ns();

    // Sessions phase: the same fleet workload with rollups and sampled
    // lineage on — the observability tax. The no-perturbation invariant
    // makes the digest comparable, so byte-identity against the plain
    // run is asserted alongside the overhead ratio and the per-session
    // memory bill.
    let timer = ScopeTimer::start("bench_sessions", "bench");
    let sessions_run = turbulence::run_fleet(&turbulence::FleetRunConfig {
        rollups: true,
        ..fleet_config
    });
    let sessions_identical = sessions_run.digest == fleet_seq.digest;
    let sessions_overhead = sessions_run.wall_ns as f64 / fleet_seq.wall_ns.max(1) as f64;
    let session_memory_bytes = sessions_run.session_memory_bytes;
    let session_memory_per = session_memory_bytes / fleet_sessions.max(1) as u64;
    let sessions_lineage_dropped = sessions_run.lineage.as_ref().map_or(0, |l| l.dropped);
    let sessions_ns = timer.elapsed_ns();

    let speedup = sequential_ns as f64 / parallel_ns.max(1) as f64;
    let scheduler_speedup = alternate_ns as f64 / sequential_ns.max(1) as f64;
    // Present only when a previous file existed to compare against.
    let baseline_fields = baseline
        .map(|base_ns| {
            format!(
                "\n  \"baseline_sequential_ns\": {base_ns},\n  \"baseline_speedup\": {:.3},",
                base_ns as f64 / sequential_ns.max(1) as f64,
            )
        })
        .unwrap_or_default();
    // Hand-rolled JSON: every value is a number, bool, or one of two
    // fixed scheduler names, nothing needs escaping, and the workspace
    // deliberately carries no serde.
    let json = format!(
        "{{\n  \"seed\": {seed},\n  \"threads\": {threads},\n  \"quick\": {quick},\n  \"scheduler\": \"{}\",\n  \"pair_runs\": {},\n  \"identical\": {identical},\n  \"schedulers_identical\": {schedulers_identical},\n  \"speedup\": {speedup:.3},\n  \"scheduler_speedup\": {scheduler_speedup:.3},{baseline_fields}\n  \"watch\": {{\n    \"series\": {watch_series_count},\n    \"windows\": {watch_windows},\n    \"memory_bytes\": {watch_memory_bytes}\n  }},\n  \"scale\": {{\n    \"events\": {},\n    \"shards\": {scale_shards},\n    \"cpus\": {cpus},\n    \"scale_sequential_ns\": {},\n    \"scale_sharded_ns\": {},\n    \"shard_speedup\": {shard_speedup:.3},\n    \"shards_identical\": {shards_identical},\n    \"exchange_reallocs\": {}\n  }},\n  \"fluid\": {{\n    \"background_flows\": {background_flows},\n    \"packet_engine_ns\": {},\n    \"hybrid_engine_ns\": {},\n    \"hybrid_speedup\": {hybrid_speedup:.3},\n    \"background_datagrams\": {},\n    \"solver_recomputes\": {},\n    \"updates_applied\": {}\n  }},\n  \"fleet\": {{\n    \"sessions\": {fleet_sessions},\n    \"events\": {},\n    \"events_per_sec\": {fleet_events_per_sec},\n    \"fleet_sequential_ns\": {},\n    \"fleet_sharded_ns\": {},\n    \"fleet_identical\": {fleet_identical},\n    \"peak_rss_bytes\": {fleet_rss},\n    \"rss_growth_bytes\": {fleet_rss_growth},\n    \"per_session_heap_bytes\": {fleet_heap_per_session}\n  }},\n  \"sessions\": {{\n    \"rollups_ns\": {},\n    \"overhead\": {sessions_overhead:.3},\n    \"identical\": {sessions_identical},\n    \"sample_permille\": {},\n    \"session_memory_bytes\": {session_memory_bytes},\n    \"memory_bytes_per_session\": {session_memory_per},\n    \"lineage_dropped\": {sessions_lineage_dropped}\n  }},\n  \"phases_ns\": {{\n    \"configs\": {configs_ns},\n    \"sequential\": {sequential_ns},\n    \"parallel\": {parallel_ns},\n    \"alternate\": {alternate_ns},\n    \"figures\": {figures_ns},\n    \"watch\": {watch_ns},\n    \"scale\": {scale_ns},\n    \"fluid\": {fluid_ns},\n    \"fleet\": {fleet_ns},\n    \"sessions\": {sessions_ns}\n  }}\n}}\n",
        scheduler.name(),
        configs.len(),
        scale_seq.events_processed,
        scale_seq.wall_ns,
        scale_shd.wall_ns,
        scale_diag.exchange_reallocs,
        fluid_packet.wall_ns,
        fluid_hybrid.wall_ns,
        fluid_packet.background_datagrams,
        fluid_diag.recomputes,
        fluid_diag.updates_applied,
        fleet_seq.events_processed,
        fleet_seq.wall_ns,
        fleet_shd.wall_ns,
        sessions_run.wall_ns,
        turb_obs::DEFAULT_SESSION_SAMPLE_PERMILLE,
    );
    std::fs::write(&out, &json).map_err(|e| format!("write {out}: {e}"))?;
    // One trajectory point per bench run, appended so perf history
    // accumulates across CI runs and local sessions.
    let trajectory = flags
        .get("trajectory")
        .cloned()
        .unwrap_or_else(|| "BENCH_trajectory.jsonl".to_string());
    let stamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let point = format!(
        "{{\"unix_secs\": {stamp}, \"seed\": {seed}, \"threads\": {threads}, \"quick\": {quick}, \"scheduler\": \"{}\", \"pair_runs\": {}, \"sequential_ns\": {sequential_ns}, \"parallel_ns\": {parallel_ns}, \"speedup\": {speedup:.3}, \"identical\": {identical}, \"watch_windows\": {watch_windows}, \"watch_memory_bytes\": {watch_memory_bytes}, \"cpus\": {cpus}, \"scale_sequential_ns\": {}, \"scale_sharded_ns\": {}, \"shard_speedup\": {shard_speedup:.3}, \"shards_identical\": {shards_identical}, \"background_flows\": {background_flows}, \"hybrid_speedup\": {hybrid_speedup:.3}, \"fleet_sessions\": {fleet_sessions}, \"fleet_ns\": {}, \"fleet_events_per_sec\": {fleet_events_per_sec}, \"fleet_identical\": {fleet_identical}, \"fleet_peak_rss_bytes\": {fleet_rss}, \"sessions_overhead\": {sessions_overhead:.3}, \"sessions_identical\": {sessions_identical}, \"session_memory_bytes\": {session_memory_bytes}}}\n",
        scheduler.name(),
        configs.len(),
        scale_seq.wall_ns,
        scale_shd.wall_ns,
        fleet_seq.wall_ns,
    );
    {
        use std::io::Write as _;
        std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&trajectory)
            .and_then(|mut f| f.write_all(point.as_bytes()))
            .map_err(|e| format!("append {trajectory}: {e}"))?;
    }
    println!(
        "bench: {} pair runs | sequential {:.2}s | parallel({threads}) {:.2}s | speedup {speedup:.2}x | identical {identical}",
        configs.len(),
        sequential_ns as f64 / 1e9,
        parallel_ns as f64 / 1e9,
    );
    println!(
        "bench: {} {:.2}s vs {} {:.2}s | {} speedup {scheduler_speedup:.2}x | identical {schedulers_identical}",
        scheduler.name(),
        sequential_ns as f64 / 1e9,
        other.name(),
        alternate_ns as f64 / 1e9,
        scheduler.name(),
    );
    if let Some(base_ns) = baseline {
        println!(
            "bench: sequential vs committed {out} baseline ({:.2}s): {:.2}x",
            base_ns as f64 / 1e9,
            base_ns as f64 / sequential_ns.max(1) as f64,
        );
    }
    println!(
        "bench: watch {watch_series_count} series / {watch_windows} windows (~{} KiB) in {:.2}s",
        watch_memory_bytes / 1024,
        watch_ns as f64 / 1e9,
    );
    println!(
        "bench: scale sequential {:.2}s vs sharded({scale_shards}) {:.2}s | shard speedup {shard_speedup:.2}x on {cpus} cpu{} | identical {shards_identical}",
        scale_seq.wall_ns as f64 / 1e9,
        scale_shd.wall_ns as f64 / 1e9,
        if cpus == 1 { "" } else { "s" },
    );
    println!(
        "bench: fluid all-packet {:.2}s vs hybrid {:.2}s at {background_flows} background flows | hybrid speedup {hybrid_speedup:.2}x | {} background datagrams vs {} rate updates",
        fluid_packet.wall_ns as f64 / 1e9,
        fluid_hybrid.wall_ns as f64 / 1e9,
        fluid_packet.background_datagrams,
        fluid_diag.updates_applied,
    );
    println!(
        "bench: fleet {} sessions sequential {:.2}s ({} events/s) vs sharded {:.2}s | identical {fleet_identical} | ~{} B heap/session (peak RSS {} MiB)",
        fleet_sessions,
        fleet_seq.wall_ns as f64 / 1e9,
        fleet_events_per_sec,
        fleet_shd.wall_ns as f64 / 1e9,
        fleet_heap_per_session,
        fleet_rss / (1024 * 1024),
    );
    println!(
        "bench: sessions rollups+sampling {:.2}s vs plain fleet {:.2}s | overhead {sessions_overhead:.3}x | identical {sessions_identical} | {} KiB rollups (~{session_memory_per} B/session), {sessions_lineage_dropped} lineage events evicted",
        sessions_run.wall_ns as f64 / 1e9,
        fleet_seq.wall_ns as f64 / 1e9,
        session_memory_bytes / 1024,
    );
    println!("bench: wrote {out} (+ trajectory point in {trajectory})");
    if let (true, Some((base_seq, base_runs))) = (gate, gate_baseline) {
        let current = sequential_ns as f64 / configs.len().max(1) as f64;
        let base = base_seq as f64 / base_runs.max(1) as f64;
        let ratio = current / base.max(1.0);
        println!(
            "bench: gate {:.1} ms/run vs {gate_path} baseline {:.1} ms/run: {ratio:.2}x (limit 1.25x)",
            current / 1e6,
            base / 1e6,
        );
        if ratio > 1.25 {
            return Err(format!(
                "performance gate failed: {ratio:.2}x the {gate_path} per-run baseline (limit 1.25x)"
            ));
        }
    }
    // The shard speedup gate only binds where parallel hardware
    // exists: on a single-core runner the barrier overhead makes a
    // sharded run honestly slower, and that number is still recorded.
    if gate && cpus >= 2 && shard_speedup < 1.0 {
        return Err(format!(
            "shard speedup gate failed: {shard_speedup:.2}x on {cpus} cpus (limit 1.00x)"
        ));
    }
    // The hybrid gate binds wherever the background population is big
    // enough for the per-datagram cost to dominate the packet side; at
    // small N both engines spend their time on the foreground and the
    // ratio says nothing about the fluid path.
    if gate && background_flows >= 1_000 && hybrid_speedup < 5.0 {
        return Err(format!(
            "hybrid speedup gate failed: {hybrid_speedup:.2}x at {background_flows} background flows (limit 5.00x)"
        ));
    }
    if !identical {
        return Err("parallel corpus output diverged from sequential".to_string());
    }
    if !schedulers_identical {
        return Err(format!(
            "{} corpus output diverged from {}",
            other.name(),
            scheduler.name()
        ));
    }
    if !shards_identical {
        return Err("sharded scale run diverged from sequential".to_string());
    }
    if !fleet_identical {
        return Err("sharded fleet run diverged from sequential".to_string());
    }
    // Rollups accumulate inline at event time, so their cost must stay
    // in the noise: the gate caps the observability tax at 5% of the
    // plain fleet phase.
    if gate && sessions_overhead > 1.05 {
        return Err(format!(
            "sessions overhead gate failed: rollups cost {sessions_overhead:.3}x the plain fleet run (limit 1.05x)"
        ));
    }
    if !sessions_identical {
        return Err("fleet run with rollups+sampling diverged from observability-off".to_string());
    }
    if sessions_lineage_dropped > 0 {
        return Err(format!(
            "lineage recorder evicted {sessions_lineage_dropped} events at the default sample rate"
        ));
    }
    Ok(())
}

/// `turbulence flowgen`: fit → generate → validate → export.
pub fn flowgen(flags: &Flags) -> Result<(), String> {
    let seed = seed_of(flags)?;
    let (set, pair) = pair_of(flags)?;
    let player = match flags.get("player").map(String::as_str) {
        None | Some("real") => PlayerId::RealPlayer,
        Some("wmp") | Some("media") => PlayerId::MediaPlayer,
        Some(other) => return Err(format!("unknown player {other:?} (real|wmp)")),
    };
    let clip = match player {
        PlayerId::RealPlayer => pair.real.clone(),
        PlayerId::MediaPlayer => pair.wmp.clone(),
    };
    let result = turbulence::run_pair(&PairRunConfig::new(seed, set, pair));
    let model = turb_flowgen::TurbulenceModel::fit(
        &result.capture,
        result.server_addr,
        player,
        clip.encoded_kbps,
    )
    .ok_or("not enough captured data to fit a model")?;
    eprintln!(
        "fitted {}: median size {:.0} B, median gap {:.1} ms, frag {:.1}%, burst ratio {:.2} over {:.1}s",
        clip.name(),
        model.datagram_sizes.sample(0.5),
        model.interarrivals.sample(0.5) * 1000.0,
        model.fragment_fraction * 100.0,
        model.buffering_ratio,
        model.burst_secs,
    );
    let mut generator =
        turb_flowgen::FlowGenerator::new(model.clone(), turb_netsim::SimRng::new(seed ^ 0x9e37));
    let packets = generator.generate(clip.duration_secs);
    let validation = turb_flowgen::validate_against_model(&model, &packets);
    eprintln!(
        "generated {} packets; K-S sizes {:.3}, gaps {:.3}, pass {}",
        packets.len(),
        validation.ks_sizes,
        validation.ks_gaps,
        validation.passes(0.1)
    );
    let trace = turb_flowgen::FlowGenerator::export_ns_trace(&packets);
    match flags.get("out") {
        Some(path) => {
            std::fs::write(path, trace).map_err(|e| format!("write {path}: {e}"))?;
            eprintln!("trace written to {path}");
        }
        None => print!("{trace}"),
    }
    Ok(())
}

/// `turbulence friendly`: the §VI sweep.
pub fn friendly(flags: &Flags) -> Result<(), String> {
    use turbulence::followup::{run_tcp_friendliness, FriendlinessConfig};
    let seed = seed_of(flags)?;
    let sweep: Vec<u64> = match flags.get("kbps") {
        None => vec![300, 400, 600, 1000, 2000],
        Some(list) => list
            .split(',')
            .map(|s| s.trim().parse().map_err(|_| format!("bad kbps {s:?}")))
            .collect::<Result<_, _>>()?,
    };
    let sets = turb_media::corpus::table1();
    let clip = sets[4]
        .pair(class_of(flags)?)
        .ok_or("set 5 lacks that class")?
        .wmp
        .clone();
    println!(
        "{:>12} {:>10} {:>8} {:>12} {:>12} {:>8}",
        "bottleneck", "offered", "loss", "tcp alone", "tcp shared", "index"
    );
    for kbps in sweep {
        let result = run_tcp_friendliness(&FriendlinessConfig {
            seed,
            clip: clip.clone(),
            bottleneck_bps: kbps * 1000,
            propagation: turb_netsim::SimDuration::from_millis(20),
            observe_secs: 45.0,
        });
        println!(
            "{:>10}K {:>9.1}K {:>7.1}% {:>11.1}K {:>11.1}K {:>8.2}",
            kbps,
            result.stream_send_kbps,
            result.stream_loss * 100.0,
            result.tcp_alone_kbps,
            result.tcp_shared_kbps,
            result.stream_share_index(),
        );
    }
    Ok(())
}

/// `turbulence ping`: path check against the six simulated sites.
pub fn ping(flags: &Flags) -> Result<(), String> {
    use turb_netsim::prelude::*;
    let seed = seed_of(flags)?;
    let mut sim = Simulation::new(seed);
    let mut rng = SimRng::new(seed);
    let scenario = InternetScenario::build(&mut sim, &mut rng, &ScenarioConfig::default());
    let reports: Vec<_> = scenario
        .sites
        .iter()
        .map(|site| {
            (
                site.server_addr,
                site.hop_count,
                tools::spawn_ping(
                    &mut sim,
                    scenario.client,
                    site.server_addr,
                    4,
                    SimDuration::from_millis(500),
                    SimDuration::ZERO,
                    &mut rng,
                ),
            )
        })
        .collect();
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(20));
    println!(
        "{:>16} {:>6} {:>12} {:>12}",
        "site", "hops", "median rtt", "loss"
    );
    for (addr, hops, report) in reports {
        let report = report.lock().unwrap();
        println!(
            "{:>16} {:>6} {:>10.1}ms {:>11.1}%",
            addr.to_string(),
            hops,
            report
                .median_rtt()
                .map(|r| r.as_millis_f64())
                .unwrap_or(f64::NAN),
            report.loss_rate() * 100.0
        );
    }
    Ok(())
}

/// `turbulence check`: the wire-layer fuzz/differential campaign, or a
/// single-case replay with `--replay`.
pub fn check(flags: &Flags) -> Result<(), String> {
    use std::path::Path;
    use turb_check::{runner, Case, CheckConfig};

    if let Some(path) = flags.get("replay") {
        let case = Case::load(Path::new(path))?;
        println!(
            "replaying {} (prop {}, seed {:#x}{})",
            path,
            case.property,
            case.seed,
            match &case.data {
                Some(d) => format!(", {} data bytes", d.len()),
                None => String::new(),
            }
        );
        return match runner::replay(&case) {
            Ok(()) => {
                println!("case passes");
                Ok(())
            }
            Err(detail) => Err(format!("case still fails: {detail}")),
        };
    }

    let seed = seed_of(flags)?;
    let iterations: u64 = match flags.get("iterations") {
        None => 1000,
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("bad --iterations {raw:?}"))?,
    };
    let only = flags
        .get("props")
        .map(|raw| raw.split(',').map(str::to_string).collect::<Vec<_>>());
    if let Some(names) = &only {
        for name in names {
            if turb_check::props::by_name(name).is_none() {
                let known: Vec<_> = turb_check::props::all().iter().map(|p| p.name).collect();
                return Err(format!(
                    "unknown property {name:?} (known: {})",
                    known.join(", ")
                ));
            }
        }
    }

    let config = CheckConfig {
        seed,
        iterations,
        only,
    };
    let (report, failures) = runner::run(&config);
    print!("{}", report.render_table());

    if failures.is_empty() {
        return Ok(());
    }
    // Persist every failure as a replayable case file.
    let dir = flags
        .get("write-failures")
        .map(String::as_str)
        .unwrap_or("check-failures");
    std::fs::create_dir_all(dir).map_err(|e| format!("creating {dir}: {e}"))?;
    for failure in &failures {
        let case = failure.to_case();
        let path = Path::new(dir).join(case.file_name());
        std::fs::write(&path, case.to_text())
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        println!(
            "FAIL {} seed {:#x}: {}",
            failure.property, failure.case_seed, failure.detail
        );
        println!("     saved {}", path.display());
    }
    Err(format!(
        "{} failing case(s); replay with `turbulence check --replay <file>`",
        failures.len()
    ))
}

/// `turbulence timeline`: reconstruct per-packet lifecycles from a
/// lineage-recorded run — top-K slowest media packets, per-stage
/// latency CDFs in the paper's figure style, a drop post-mortem
/// reconciled against the always-on drop counters, and an optional
/// Perfetto-loadable trace export.
pub fn timeline(flags: &Flags) -> Result<(), String> {
    use std::collections::BTreeMap;
    use turb_obs::lineage::{self, DropCause, SpanOutcome, Stage};
    use turb_stats::Cdf;

    let seed = seed_of(flags)?;
    let scheduler = scheduler_of(flags)?;
    let top: usize = match flags.get("top") {
        None => 10,
        Some(raw) => raw.parse().map_err(|_| format!("bad --top {raw:?}"))?,
    };
    let corpus_mode = flags.contains_key("corpus");
    if corpus_mode && flags.contains_key("perfetto") {
        return Err("--perfetto exports one run; drop --corpus or pick a --set".into());
    }
    let loss = loss_of(flags)?;
    let mut configs = if corpus_mode {
        runner::corpus_configs(seed)
    } else {
        let (set, pair) = pair_of(flags)?;
        vec![PairRunConfig::new(seed, set, pair)]
    };
    for config in &mut configs {
        config.telemetry = true;
        config.lineage = true;
        config.scheduler = scheduler;
        if let Some(loss) = loss {
            config.access_loss = loss;
        }
    }

    // Aggregates across runs (one run unless --corpus). Lineage dumps
    // are large, so runs go sequentially and each dump is freed before
    // the next run starts.
    let mut samples = lineage::StageSamples::default();
    // (e2e_ns, run, player, seq, media_ms, hops, outcome)
    let mut slowest: Vec<(u64, String, &'static str, u32, u32, usize, String)> = Vec::new();
    let mut drops: BTreeMap<(&'static str, String), u64> = BTreeMap::new();
    let mut mismatches: Vec<String> = Vec::new();
    let (mut spans, mut events, mut ring_dropped) = (0u64, 0u64, 0u64);
    let mut outcomes = (0u64, 0u64, 0u64, 0u64);

    for config in &configs {
        let result = turbulence::run_pair(config);
        let telemetry = result
            .telemetry
            .as_ref()
            .expect("telemetry was requested for this run");
        let label = telemetry.report.label.clone();
        let dump = telemetry
            .lineage
            .as_ref()
            .expect("lineage was requested for this run");
        dump.validate()
            .map_err(|e| format!("{label}: lineage dump inconsistent: {e}"))?;

        spans += dump.origins.len() as u64;
        events += dump.events.len() as u64;
        ring_dropped += dump.dropped;
        let (p, c, d, t) = dump.outcome_counts();
        outcomes = (
            outcomes.0 + p,
            outcomes.1 + c,
            outcomes.2 + d,
            outcomes.3 + t,
        );
        println!(
            "{label}: {} spans, {} events | {p} played / {c} completed / {d} dropped / {t} truncated",
            dump.origins.len(),
            dump.events.len(),
        );

        let run = lineage::stage_samples(dump);
        samples.hop_ns.extend(run.hop_ns);
        samples.reasm_ns.extend(run.reasm_ns);
        samples.residency_ns.extend(run.residency_ns);
        samples.e2e_ns.extend(run.e2e_ns);

        for tl in dump.reconstruct() {
            let origin = &dump.origins[tl.span as usize];
            let Some(meta) = origin.meta else { continue };
            let Some(end) = tl
                .first_time(|s| s == Stage::Buffered)
                .or_else(|| tl.first_time(|s| s == Stage::Delivered))
            else {
                continue;
            };
            let outcome = match tl.outcome {
                SpanOutcome::Dropped(cause) => format!("dropped:{}", cause.label()),
                other => other.label().to_string(),
            };
            slowest.push((
                end - origin.time_ns,
                label.clone(),
                turb_media::player_label(meta.player),
                meta.sequence,
                meta.media_time_ms,
                tl.hops(),
                outcome,
            ));
        }
        // Deterministic order: slowest first, run label and sequence
        // as tie-breakers; only the global top K is kept per run so
        // corpus mode stays bounded.
        slowest.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)).then(a.3.cmp(&b.3)));
        slowest.truncate(top);

        // The post-mortem must reconcile exactly: every cause's
        // Dropped events against its always-on simulator counter, and
        // every capture record against a Sniffed event. A dump whose
        // recorder cap evicted events can no longer account for
        // everything, so the reconciliation is only enforced on
        // complete dumps (the warning below calls this out).
        let pm = lineage::post_mortem(dump);
        for (cause, comp, n) in &pm.entries {
            *drops
                .entry((cause.label(), dump.component(*comp).to_string()))
                .or_insert(0) += n;
        }
        if dump.dropped == 0 {
            for cause in DropCause::ALL {
                let attributed = pm.cause_total(cause);
                let counted = telemetry.metrics.counter_total(cause.counter());
                if attributed != counted {
                    mismatches.push(format!(
                        "{label}: {} attributed {attributed} drops but {} counted {counted}",
                        cause.label(),
                        cause.counter(),
                    ));
                }
            }
            let sniffed = dump
                .events
                .iter()
                .filter(|e| e.stage == Stage::Sniffed)
                .count() as u64;
            if sniffed != telemetry.report.capture_records {
                mismatches.push(format!(
                    "{label}: {sniffed} sniffed lineage events vs {} capture records",
                    telemetry.report.capture_records,
                ));
            }
        }

        if let Some(path) = flags.get("perfetto") {
            let trace = lineage::to_chrome_trace(dump);
            std::fs::write(path, &trace).map_err(|e| format!("write {path}: {e}"))?;
            println!(
                "perfetto: {} spans / {} events written to {path} (load at ui.perfetto.dev)",
                dump.origins.len(),
                dump.events.len(),
            );
        }
    }

    println!(
        "\ntimeline: {spans} spans, {events} events | {} played / {} completed / {} dropped / {} truncated",
        outcomes.0, outcomes.1, outcomes.2, outcomes.3,
    );
    if ring_dropped > 0 {
        println!(
            "warning: {ring_dropped} lineage events evicted by the recorder cap; \
             accounting below is partial and was not cross-checked"
        );
    }

    let rows: Vec<Vec<String>> = slowest
        .iter()
        .map(|(e2e, run, player, seq, media_ms, hops, outcome)| {
            vec![
                run.clone(),
                player.to_string(),
                seq.to_string(),
                media_ms.to_string(),
                format!("{:.3}", *e2e as f64 / 1e6),
                hops.to_string(),
                outcome.clone(),
            ]
        })
        .collect();
    if !rows.is_empty() {
        println!(
            "{}",
            report::table(
                &format!("Top {} slowest media packets (send -> buffer)", rows.len()),
                &["run", "player", "seq", "media ms", "e2e ms", "hops", "outcome"],
                &rows
            )
        );
    }

    for (title, values) in [
        ("Per-hop latency CDF", &samples.hop_ns),
        ("Reassembly latency CDF", &samples.reasm_ns),
        ("Playback buffer residency CDF", &samples.residency_ns),
        ("End-to-end (send -> buffer) CDF", &samples.e2e_ns),
    ] {
        if values.is_empty() {
            continue;
        }
        let ms: Vec<f64> = values.iter().map(|ns| ns / 1e6).collect();
        println!(
            "{}",
            report::cdf_quantiles(title, &Cdf::from_samples(&ms), "ms")
        );
    }

    let attributed: u64 = drops.values().sum();
    if drops.is_empty() {
        println!("Drop post-mortem: no wire packets were dropped.");
    } else {
        let rows: Vec<Vec<String>> = drops
            .iter()
            .map(|((cause, comp), n)| vec![cause.to_string(), comp.clone(), n.to_string()])
            .collect();
        println!(
            "{}",
            report::table(
                "Drop post-mortem",
                &["cause", "component", "packets"],
                &rows
            )
        );
        println!("post-mortem: {attributed} dropped wire packets attributed");
    }
    if mismatches.is_empty() {
        println!("cross-check: every drop cause and capture record reconciles with its counter");
        Ok(())
    } else {
        Err(format!(
            "drop post-mortem failed to reconcile:\n  {}",
            mismatches.join("\n  ")
        ))
    }
}

/// Render `values` as a sparkline at most `width` cells wide. Longer
/// series are downsampled by chunking, keeping each chunk's maximum so
/// short spikes stay visible at any zoom level.
fn sparkline(values: &[u64], width: usize) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let cells = width.min(values.len()).max(1);
    let mut chunks = Vec::with_capacity(cells);
    for i in 0..cells {
        let lo = i * values.len() / cells;
        let hi = (((i + 1) * values.len()) / cells).max(lo + 1);
        chunks.push(values[lo..hi].iter().copied().max().unwrap_or(0));
    }
    let max = chunks.iter().copied().max().unwrap_or(0);
    chunks
        .iter()
        .map(|&v| {
            if v == 0 || max == 0 {
                BARS[0]
            } else {
                // Ceiling-scale 1..=max onto 1..=8 so any non-zero
                // window is visibly above the baseline.
                let idx = ((v as u128 * 8).div_ceil(max as u128) as usize).min(8);
                BARS[idx - 1]
            }
        })
        .collect()
}

/// `turbulence watch`: per-window time-series view of a pair run or
/// the corpus — bandwidth in and out, loss by cause, queue depth,
/// playback buffer occupancy, and reassembly backlog as sparkline
/// curves over simulated time, with deterministic JSONL/CSV exports.
/// Windowed loss totals are cross-checked 1:1 against the always-on
/// drop counters before anything is printed.
pub fn watch(flags: &Flags) -> Result<(), String> {
    use turb_obs::lineage::DropCause;
    use turb_obs::timeseries::SeriesKind;

    let seed = seed_of(flags)?;
    let scheduler = scheduler_of(flags)?;
    let threads = threads_of(flags)?;
    let corpus_mode = flags.contains_key("corpus");
    let loss = loss_of(flags)?;
    let window_ns: u64 = match flags.get("window") {
        None => 0, // recorder default: 1 simulated second
        Some(raw) => {
            let secs: f64 = raw.parse().map_err(|_| format!("bad --window {raw:?}"))?;
            if !secs.is_finite() || secs <= 0.0 {
                return Err(format!(
                    "--window {raw} must be a positive number of seconds"
                ));
            }
            (secs * 1e9) as u64
        }
    };
    // A bare `--metrics` parses as "true" (the flag doubles as the
    // `obs` exposition switch); treat it as "no filter".
    let metric_filter: Vec<String> = flags
        .get("metrics")
        .filter(|list| list.as_str() != "true")
        .map(|list| {
            list.split(',')
                .map(|m| m.trim().to_string())
                .filter(|m| !m.is_empty())
                .collect()
        })
        .unwrap_or_default();

    let mut configs = if corpus_mode {
        match flags.get("sets") {
            None => runner::corpus_configs(seed),
            Some(list) => {
                let sets: Vec<u8> = list
                    .split(',')
                    .map(|s| s.trim().parse().map_err(|_| format!("bad set {s:?}")))
                    .collect::<Result<_, _>>()?;
                runner::corpus_configs_for_sets(seed, &sets)
            }
        }
    } else {
        let (set, pair) = pair_of(flags)?;
        vec![PairRunConfig::new(seed, set, pair)]
    };
    let shards = shards_of(flags)?;
    let engine = engine_of(flags)?;
    let background = background_of(flags)?;
    for config in &mut configs {
        config.telemetry = true;
        config.timeseries = true;
        config.ts_window_ns = window_ns;
        config.scheduler = scheduler;
        config.shards = shards;
        config.engine = engine;
        config.background_flows = background;
        if let Some(loss) = loss {
            config.access_loss = loss;
        }
    }
    let result = runner::run_configs_parallel(&configs, threads);
    let metrics = result.aggregate_metrics();
    let mut dump = result
        .aggregate_series()
        .ok_or("no time-series were recorded")?;

    // Reconcile before any filtering: per-cause windowed loss totals
    // (which survive ring eviction) must match the always-on drop
    // counters exactly, and likewise for the bandwidth counters. A
    // mismatch means an event path bypassed its windowed hook.
    let mut mismatches: Vec<String> = Vec::new();
    for cause in DropCause::ALL {
        let windowed = dump.total_of(cause.counter());
        let counted = metrics.counter_total(cause.counter());
        if windowed != counted {
            mismatches.push(format!(
                "{}: windowed total {windowed} vs always-on counter {counted}",
                cause.counter(),
            ));
        }
    }
    for metric in ["link_tx_bytes_total", "node_rx_bytes_total"] {
        let windowed = dump.total_of(metric);
        let counted = metrics.counter_total(metric);
        if windowed != counted {
            mismatches.push(format!(
                "{metric}: windowed total {windowed} vs always-on counter {counted}"
            ));
        }
    }
    if !mismatches.is_empty() {
        return Err(format!(
            "windowed series failed to reconcile with always-on counters:\n  {}",
            mismatches.join("\n  ")
        ));
    }

    // `--metrics` narrows the view (substring match on metric names);
    // exports below carry the same narrowed view.
    if !metric_filter.is_empty() {
        dump.series
            .retain(|s| metric_filter.iter().any(|f| s.metric.contains(f)));
        if dump.series.is_empty() {
            return Err(format!(
                "--metrics {:?} matched no recorded series",
                metric_filter.join(",")
            ));
        }
    }

    // Exports carry the (possibly narrowed) view and happen before any
    // table rendering, so piping the report through `head` can never
    // truncate the files.
    if let Some(path) = flags.get("jsonl") {
        std::fs::write(path, dump.to_jsonl()).map_err(|e| format!("write {path}: {e}"))?;
        println!(
            "watch: wrote {} series to {path} (JSONL)",
            dump.series.len()
        );
    }
    if let Some(path) = flags.get("csv") {
        std::fs::write(path, dump.to_csv()).map_err(|e| format!("write {path}: {e}"))?;
        println!(
            "watch: wrote {} windows to {path} (CSV)",
            dump.window_count()
        );
    }

    let window_secs = dump.window_ns as f64 / 1e9;
    println!(
        "watch: {} pair run{} (seed {seed}, {} worker thread{}) | {window_secs}s windows | {} series, {} retained windows (~{} KiB)",
        result.runs.len(),
        if result.runs.len() == 1 { "" } else { "s" },
        result.threads,
        if result.threads == 1 { "" } else { "s" },
        dump.series.len(),
        dump.window_count(),
        dump.memory_bytes() / 1024,
    );
    println!("cross-check: every windowed loss and bandwidth total reconciles with its counter\n");

    let rows: Vec<Vec<String>> = dump
        .series
        .iter()
        .map(|s| {
            let peak = s.values.iter().copied().max().unwrap_or(0);
            let total = match s.kind {
                SeriesKind::Counter => s.total.to_string(),
                SeriesKind::Gauge => format!("max {}", s.total),
            };
            let evicted = if s.evicted > 0 {
                format!(" (+{} evicted)", s.evicted)
            } else {
                String::new()
            };
            vec![
                s.metric.clone(),
                s.component.clone(),
                total,
                format!("{peak}{evicted}"),
                sparkline(&s.values, 48),
            ]
        })
        .collect();
    println!(
        "{}",
        report::table(
            &format!("Per-window series ({window_secs}s windows, newest right)"),
            &["metric", "component", "total", "peak/win", "curve"],
            &rows
        )
    );

    Ok(())
}
