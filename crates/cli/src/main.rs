//! `turbulence` — the workspace's command-line interface.
//!
//! ```text
//! turbulence corpus     [--seed N] [--sets 1,2,5]     full corpus + figure digests
//!                       [--threads N] [--scheduler S] [--shards N]
//! turbulence pair       --set N --class low|high|vh   one pair run, summarised
//!                       [--seed N] [--pcap FILE] [--loss P] [--telemetry]
//! turbulence obs        --set N [--class C] [--seed N] [--loss P]
//!                       [--metrics] [--trace FILE]    one pair run, telemetry report
//! turbulence figures    [--seed N] [--threads N]      every figure's data rows
//! turbulence bench      [--seed N] [--threads N]      corpus wall-clock benchmark,
//!                       [--quick] [--out FILE]        machine-readable JSON output,
//!                       [--scheduler S] [--gate]      wheel-vs-heap A/B comparison,
//!                       [--baseline FILE]             25% regression gate + perf
//!                       [--trajectory FILE]           trajectory log
//! turbulence flowgen    --set N --class C --player real|wmp
//!                       [--seed N] [--out FILE]       fit, generate, validate, export
//! turbulence friendly   [--kbps N,...] [--seed N]     §VI TCP-friendliness sweep
//! turbulence ping       [--seed N]                    path check against all six sites
//! turbulence check      [--iterations N] [--seed N]   wire-layer fuzz/differential campaign
//!                       [--props a,b] [--replay FILE]
//!                       [--write-failures DIR]
//! turbulence timeline   --set N [--class C] | --corpus
//!                       [--seed N] [--loss P] [--top K] per-packet lifecycle analysis:
//!                       [--perfetto FILE]             slowest packets, stage CDFs,
//!                       [--scheduler S]               drop post-mortem, trace export
//! turbulence watch      --set N [--class C] | --corpus
//!                       [--seed N] [--loss P]         per-window tables + sparklines:
//!                       [--window SECS] [--metrics M,M] bandwidth, loss by cause,
//!                       [--jsonl FILE] [--csv FILE]   queue depth, buffer occupancy,
//!                       [--threads N] [--sets 1,2]    reassembly backlog
//! turbulence scale      [--seed N] [--shards N]       replicated-client scale run,
//!                       [--clients N] [--groups N]    sequential vs sharded, with
//!                       [--packets N] [--background N] byte-identity check + speedup;
//!                       [--engine packet|hybrid]      fluid background population
//! turbulence fleet      [--sessions N] [--arrival A]  session population over the
//!                       [--duration-dist D] [--diurnal] scale ring: Poisson/MMPP
//!                       [--groups N] [--background N] arrivals, Pareto lifetimes,
//!                       [--engine E] [--shards N]     heavy-traffic figures
//!                       [--threads N] [--lineage]
//!                       [--rollups] [--progress]
//! turbulence sessions   [fleet options] [--top K]     fleet-scale session QoE:
//!                       [--by loss,rebuffer,...]      per-class CDFs, top-K worst
//!                       [--session ID]                sessions, sampled-lineage
//!                       [--jsonl FILE] [--csv FILE]   drill-down, rollup export
//!                       [--sample-permille N]
//! ```

use std::collections::HashMap;
use std::process::ExitCode;
use turb_media::{corpus, RateClass};
use turb_netsim::{EngineKind, SchedulerKind, ShardKind};

mod commands;

fn usage() -> &'static str {
    "turbulence — reproduce 'MediaPlayer vs RealPlayer: A Comparison of Network Turbulence'

USAGE:
    turbulence <command> [options]

COMMANDS:
    corpus      run the full 26-clip corpus and print every figure's digest
    pair        run one clip pair and summarise what both trackers measured
    obs         run one clip pair with telemetry and print the run report
    figures     run the corpus and print the full data rows per figure
    bench       time the corpus sequential vs parallel, write BENCH_corpus.json
    flowgen     fit a Section-IV turbulence model and export an ns-style trace
    friendly    run the §VI TCP-friendliness sweep
    ping        check the simulated paths to all six server sites
    check       run the seeded wire-layer fuzz/differential campaign
    timeline    trace per-packet lifecycles: slowest packets, stage CDFs,
                drop post-mortem, Perfetto export
    watch       per-window time-series view of a pair run or the corpus:
                bandwidth, loss by cause, queue depth, buffer occupancy
    scale       run the replicated-client scale scenario sequentially and
                sharded, assert byte-identity, report the speedup
    fleet       multiplex a session population (Poisson/MMPP arrivals,
                heavy-tailed lifetimes) over the scale ring and print
                the heavy-traffic figures
    sessions    the fleet's session-level QoE view: per-class rollup
                summary and CDFs, top-K worst sessions, sampled-lineage
                drill-down, deterministic JSONL/CSV export
    help        print this text

OPTIONS (per command):
    --seed N            deterministic seed (default 42)
    --sets 1,2,5        corpus: restrict to these data sets
    --set N             pair/obs/flowgen: data set number (1-6)
    --class C           pair/obs/flowgen: low | high | vh (default high)
    --player P          flowgen: real | wmp (default real)
    --pcap FILE         pair: write the client capture as a pcap file
    --loss P            pair/obs: Bernoulli loss (0..=1) on the access link
    --telemetry         pair/corpus: collect and print the telemetry report
    --threads N         corpus/figures/bench/watch: worker threads fanning
                        *whole pair runs* across a pool (default 0 = auto:
                        min(available cores, runs); 1 runs sequentially).
                        Compare --shards, which parallelises
                        inside one simulation; the two compose.
    --shards N          corpus/pair/obs/figures/watch/bench/scale: partition
                        each simulation into N shard domains, one worker
                        thread per domain (default: sequential; results are
                        byte-identical at every N; N may not exceed the
                        scenario's node count)
    --scheduler S       corpus/pair/obs/figures/bench: event-queue engine,
                        wheel | heap (default wheel; results are identical)
    --metrics           obs: also print Prometheus-style metrics exposition
    --trace FILE        obs: dump the flight recorder as JSON Lines
    --quick             bench: sets 1-2 only, for CI time budgets
    --gate              bench: fail when sequential time regresses >25%
                        per pair run against the baseline file
    --baseline FILE     bench: baseline JSON the gate compares against
                        (default: the --out path, before overwrite)
    --trajectory FILE   bench: perf-history JSON Lines appended per run
                        (default BENCH_trajectory.jsonl)
    --out FILE          flowgen: trace output path (default stdout)
                        bench: JSON output path (default BENCH_corpus.json)
    --kbps N,N,...      friendly: bottleneck sweep in Kbit/s
    --set N, --class C  timeline: one pair run (or --corpus for all)
    --corpus            timeline: trace every corpus run sequentially
    --top N             timeline: slowest-packet table size (default 10)
    --perfetto FILE     timeline: write the Chrome-trace JSON export
                        (single-run mode only)
    --window SECS       watch: window width in simulated seconds
                        (default 1; fractions allowed)
    --metrics M,M       watch: restrict the view to these metric names
                        (substring match; default: all recorded series)
    --jsonl FILE        watch: export the raw series as JSON Lines
    --csv FILE          watch: export the long-format per-window CSV
    --clients N         scale: client hosts per group (default 256)
    --groups N          scale/fleet: site groups on the ring (default 8)
    --packets N         scale: datagrams each client sends (default 40)
    --sessions N        fleet: population size (default 1000);
                        bench: fleet-phase population (default 100000,
                        or 10000 with --quick)
    --arrival A         fleet: arrival process, poisson:RATE or
                        mmpp:FAST,SLOW,DWELL in sessions/s (default
                        poisson:200)
    --duration-dist D   fleet: session lifetimes, pareto:XM,ALPHA or
                        fixed:SECS (default pareto:2,1.5)
    --diurnal           fleet: thin arrivals by the compressed diurnal
                        load curve (one cycle per 10 simulated minutes)
    --wmp-permille N    fleet: MediaPlayer share per 1000 sessions
                        (default 500; the rest are RealPlayer-like)
    --lineage           fleet/sessions: record full packet lineage for
                        every session (figures are identical either way;
                        overrides the sampler)
    --rollups           fleet/obs: accumulate per-session QoE rollups
                        (≤128 B/session) and print the per-class summary
    --sample-permille N fleet/sessions: sessions per 1000 whose packets
                        get full lineage, hash-selected from the seed
                        (default 10; thread/shard/engine invariant)
    --progress          fleet/sessions/scale/corpus/obs/bench: heartbeat
                        line on stderr every few seconds (sim time,
                        events/s, sessions live/done, RSS, ETA); stderr
                        only — never part of the byte-identity set
    --top K             sessions: worst-session table size (default 10)
    --by TERMS          sessions: badness ranking key — comma-separated
                        loss|rebuffer|startup|goodput, each optionally
                        =weight (default loss,rebuffer,startup)
    --session ID        sessions: print the sampled session's per-packet
                        lineage timeline
    --jsonl FILE        sessions: export every rollup as JSON Lines
    --csv FILE          sessions: export every rollup as CSV
    --engine E          corpus/pair/obs/figures/watch/scale/bench: how
                        background flows are simulated, packet | hybrid
                        (default packet; hybrid lowers them onto the
                        fluid max-min solver — zero events per flow,
                        and with --background 0 results stay
                        byte-identical to the packet engine)
    --background N      corpus/pair/obs/figures/watch/scale/bench:
                        background flows sharing the path (default 0;
                        scale: bulk flows over the backbone ring;
                        fleet: background-class sessions per 1000)
    --iterations N      check: cases per property (default 1000)
    --props a,b         check: restrict to these properties
    --replay FILE       check: re-run one stored .case file instead
    --write-failures D  check: directory for failing-case files
                        (default check-failures)
"
}

/// Flags that stand alone (no value); parsed as `flag=true`.
const BOOLEAN_FLAGS: &[&str] = &[
    "telemetry",
    "quick",
    "corpus",
    "gate",
    "diurnal",
    "lineage",
    "rollups",
    "progress",
];

/// Flags that take a value when one follows but also stand alone:
/// `obs --metrics` prints the full exposition, while
/// `watch --metrics tx,loss` narrows the view to matching series.
const OPTIONAL_VALUE_FLAGS: &[&str] = &["metrics"];

/// Minimal flag parser: `--key value` pairs after the subcommand, plus
/// the bare boolean flags in [`BOOLEAN_FLAGS`].
fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got {:?}", args[i]))?;
        if BOOLEAN_FLAGS.contains(&key) {
            flags.insert(key.to_string(), "true".to_string());
            i += 1;
            continue;
        }
        if OPTIONAL_VALUE_FLAGS.contains(&key) {
            match args.get(i + 1).filter(|v| !v.starts_with("--")) {
                Some(value) => {
                    flags.insert(key.to_string(), value.clone());
                    i += 2;
                }
                None => {
                    flags.insert(key.to_string(), "true".to_string());
                    i += 1;
                }
            }
            continue;
        }
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("--{key} needs a value"))?;
        flags.insert(key.to_string(), value.clone());
        i += 2;
    }
    Ok(flags)
}

fn seed_of(flags: &HashMap<String, String>) -> Result<u64, String> {
    match flags.get("seed") {
        None => Ok(42),
        Some(s) => s.parse().map_err(|_| format!("bad seed {s:?}")),
    }
}

/// `--threads N`, defaulting to `0` = auto: the runner resolves it to
/// `min(available cores, jobs)`, so a 13-run corpus never spawns more
/// workers than it has runs to fill them with.
fn threads_of(flags: &HashMap<String, String>) -> Result<usize, String> {
    match flags.get("threads") {
        None => Ok(0),
        Some(s) => s.parse().map_err(|_| format!("bad --threads {s:?}")),
    }
}

/// `--shards N`: partition each simulation into N shard domains with
/// one worker thread per domain. Not to be confused with `--threads`,
/// which fans whole pair runs across a pool: shards parallelise
/// *inside* one simulation, and the two compose. Absent means
/// sequential; `--shards 1` runs the partitioned engine with a single
/// domain, which is useful for overhead measurements.
fn shards_of(flags: &HashMap<String, String>) -> Result<ShardKind, String> {
    match flags.get("shards") {
        None => Ok(ShardKind::Sequential),
        Some(s) => {
            let n: u16 = s.parse().map_err(|_| format!("bad --shards {s:?}"))?;
            if n == 0 {
                return Err("--shards must be at least 1 (omit it to run sequentially)".into());
            }
            Ok(ShardKind::Sharded(n))
        }
    }
}

/// `--scheduler wheel|heap`: the event-queue engine. The timing wheel
/// is the default; the heap is kept for A/B runs and equivalence tests.
fn scheduler_of(flags: &HashMap<String, String>) -> Result<SchedulerKind, String> {
    match flags.get("scheduler").map(String::as_str) {
        None | Some("wheel") => Ok(SchedulerKind::Wheel),
        Some("heap") => Ok(SchedulerKind::Heap),
        Some(other) => Err(format!("unknown scheduler {other:?} (wheel|heap)")),
    }
}

/// `--engine packet|hybrid`: how background flows are simulated. The
/// all-packet engine is the default; the hybrid engine lowers
/// background flows onto the fluid max-min solver.
fn engine_of(flags: &HashMap<String, String>) -> Result<EngineKind, String> {
    match flags.get("engine") {
        None => Ok(EngineKind::Packet),
        Some(s) => {
            EngineKind::parse(s).ok_or_else(|| format!("unknown engine {s:?} (packet|hybrid)"))
        }
    }
}

/// `--background N`: background flows sharing the foreground's path.
fn background_of(flags: &HashMap<String, String>) -> Result<u32, String> {
    match flags.get("background") {
        None => Ok(0),
        Some(s) => s.parse().map_err(|_| format!("bad --background {s:?}")),
    }
}

fn class_of(flags: &HashMap<String, String>) -> Result<RateClass, String> {
    match flags.get("class").map(String::as_str) {
        None | Some("high") => Ok(RateClass::High),
        Some("low") => Ok(RateClass::Low),
        Some("vh") | Some("veryhigh") | Some("very-high") => Ok(RateClass::VeryHigh),
        Some(other) => Err(format!("unknown class {other:?} (low|high|vh)")),
    }
}

fn pair_of(flags: &HashMap<String, String>) -> Result<(u8, turb_media::ClipPair), String> {
    let set: u8 = flags
        .get("set")
        .ok_or("--set is required")?
        .parse()
        .map_err(|_| "bad --set".to_string())?;
    let class = class_of(flags)?;
    let sets = corpus::table1();
    let data_set = sets
        .iter()
        .find(|s| s.id == set)
        .ok_or_else(|| format!("data set {set} does not exist (1-6)"))?;
    let pair = data_set
        .pair(class)
        .ok_or_else(|| format!("set {set} has no {class:?} pair"))?;
    Ok((set, pair.clone()))
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        print!("{}", usage());
        return Ok(());
    };
    let flags = parse_flags(&args[1..])?;
    match command.as_str() {
        "corpus" => commands::corpus(&flags),
        "pair" => commands::pair(&flags),
        "obs" => commands::obs(&flags),
        "figures" => commands::figures_cmd(&flags),
        "bench" => commands::bench(&flags),
        "flowgen" => commands::flowgen(&flags),
        "friendly" => commands::friendly(&flags),
        "ping" => commands::ping(&flags),
        "check" => commands::check(&flags),
        "timeline" => commands::timeline(&flags),
        "watch" => commands::watch(&flags),
        "scale" => commands::scale(&flags),
        "fleet" => commands::fleet(&flags),
        "sessions" => commands::sessions(&flags),
        "help" | "--help" | "-h" => {
            print!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command {other:?}; try `turbulence help`")),
    }
}

fn main() -> ExitCode {
    // A panic anywhere below (simulator invariant violation, slice
    // index, poisoned lock) must still leave the shell a nonzero exit
    // code and a readable message, not a raw backtrace dump.
    match std::panic::catch_unwind(run) {
        Ok(Ok(())) => ExitCode::SUCCESS,
        Ok(Err(message)) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
        Err(panic) => {
            let message = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "unknown internal error".to_string());
            eprintln!("error: internal failure: {message}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(pairs: &[(&str, &str)]) -> HashMap<String, String> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn parse_flags_accepts_key_value_pairs() {
        let args: Vec<String> = ["--seed", "7", "--set", "3"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let parsed = parse_flags(&args).unwrap();
        assert_eq!(parsed.get("seed").map(String::as_str), Some("7"));
        assert_eq!(parsed.get("set").map(String::as_str), Some("3"));
    }

    #[test]
    fn parse_flags_rejects_bare_values_and_dangling_flags() {
        let bare: Vec<String> = vec!["seed".into()];
        assert!(parse_flags(&bare).is_err());
        let dangling: Vec<String> = vec!["--seed".into()];
        assert!(parse_flags(&dangling).is_err());
    }

    #[test]
    fn seed_defaults_to_42() {
        assert_eq!(seed_of(&flags(&[])).unwrap(), 42);
        assert_eq!(seed_of(&flags(&[("seed", "9")])).unwrap(), 9);
        assert!(seed_of(&flags(&[("seed", "x")])).is_err());
    }

    #[test]
    fn class_parses_all_spellings() {
        assert_eq!(class_of(&flags(&[])).unwrap(), RateClass::High);
        assert_eq!(
            class_of(&flags(&[("class", "low")])).unwrap(),
            RateClass::Low
        );
        for vh in ["vh", "veryhigh", "very-high"] {
            assert_eq!(
                class_of(&flags(&[("class", vh)])).unwrap(),
                RateClass::VeryHigh
            );
        }
        assert!(class_of(&flags(&[("class", "medium")])).is_err());
    }

    #[test]
    fn pair_of_validates_set_and_class() {
        let (set, pair) = pair_of(&flags(&[("set", "5"), ("class", "low")])).unwrap();
        assert_eq!(set, 5);
        assert_eq!(pair.real.encoded_kbps, 22.0);
        assert!(pair_of(&flags(&[])).is_err(), "--set required");
        assert!(pair_of(&flags(&[("set", "9")])).is_err(), "no set 9");
        assert!(
            pair_of(&flags(&[("set", "1"), ("class", "vh")])).is_err(),
            "set 1 has no very-high pair"
        );
    }

    #[test]
    fn scheduler_parses_both_engines_and_defaults_to_wheel() {
        assert_eq!(scheduler_of(&flags(&[])).unwrap(), SchedulerKind::Wheel);
        assert_eq!(
            scheduler_of(&flags(&[("scheduler", "wheel")])).unwrap(),
            SchedulerKind::Wheel
        );
        assert_eq!(
            scheduler_of(&flags(&[("scheduler", "heap")])).unwrap(),
            SchedulerKind::Heap
        );
        assert!(scheduler_of(&flags(&[("scheduler", "btree")])).is_err());
    }

    #[test]
    fn usage_names_every_command() {
        for command in [
            "corpus", "pair", "obs", "figures", "bench", "flowgen", "friendly", "ping", "check",
            "timeline", "watch", "scale", "fleet", "sessions",
        ] {
            assert!(usage().contains(command), "{command} missing from usage");
        }
    }

    #[test]
    fn shards_defaults_to_sequential_and_rejects_zero() {
        assert_eq!(shards_of(&flags(&[])).unwrap(), ShardKind::Sequential);
        assert_eq!(
            shards_of(&flags(&[("shards", "4")])).unwrap(),
            ShardKind::Sharded(4)
        );
        assert_eq!(
            shards_of(&flags(&[("shards", "1")])).unwrap(),
            ShardKind::Sharded(1)
        );
        assert!(shards_of(&flags(&[("shards", "0")])).is_err());
        assert!(shards_of(&flags(&[("shards", "many")])).is_err());
    }

    #[test]
    fn usage_disambiguates_threads_from_shards() {
        // The two parallelism axes must each explain themselves in
        // terms of the other.
        assert!(usage().contains("whole pair runs"));
        assert!(usage().contains("inside one simulation"));
    }

    #[test]
    fn threads_defaults_to_auto_and_accepts_explicit_counts() {
        // 0 = auto; the runner resolves it against the job count so a
        // 13-run corpus on a 4-core host gets 4 workers, not 1.
        assert_eq!(threads_of(&flags(&[])).unwrap(), 0);
        assert_eq!(threads_of(&flags(&[("threads", "0")])).unwrap(), 0);
        assert_eq!(threads_of(&flags(&[("threads", "4")])).unwrap(), 4);
        assert!(threads_of(&flags(&[("threads", "lots")])).is_err());
    }

    #[test]
    fn engine_parses_both_engines_and_defaults_to_packet() {
        assert_eq!(engine_of(&flags(&[])).unwrap(), EngineKind::Packet);
        assert_eq!(
            engine_of(&flags(&[("engine", "packet")])).unwrap(),
            EngineKind::Packet
        );
        assert_eq!(
            engine_of(&flags(&[("engine", "hybrid")])).unwrap(),
            EngineKind::Hybrid
        );
        assert!(engine_of(&flags(&[("engine", "fluid")])).is_err());
    }

    #[test]
    fn background_defaults_to_zero() {
        assert_eq!(background_of(&flags(&[])).unwrap(), 0);
        assert_eq!(
            background_of(&flags(&[("background", "10000")])).unwrap(),
            10_000
        );
        assert!(background_of(&flags(&[("background", "-3")])).is_err());
    }

    #[test]
    fn boolean_flags_need_no_value() {
        let args: Vec<String> = ["--telemetry", "--seed", "7", "--metrics"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let parsed = parse_flags(&args).unwrap();
        assert_eq!(parsed.get("telemetry").map(String::as_str), Some("true"));
        assert_eq!(parsed.get("metrics").map(String::as_str), Some("true"));
        assert_eq!(parsed.get("seed").map(String::as_str), Some("7"));
    }

    #[test]
    fn metrics_flag_takes_an_optional_value() {
        // `watch --metrics tx,loss` consumes the list as a value...
        let args: Vec<String> = ["--metrics", "tx,loss", "--seed", "7"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let parsed = parse_flags(&args).unwrap();
        assert_eq!(parsed.get("metrics").map(String::as_str), Some("tx,loss"));
        assert_eq!(parsed.get("seed").map(String::as_str), Some("7"));
        // ...while `obs --metrics --trace t.jsonl` stays a bare switch.
        let args: Vec<String> = ["--metrics", "--trace", "t.jsonl"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let parsed = parse_flags(&args).unwrap();
        assert_eq!(parsed.get("metrics").map(String::as_str), Some("true"));
        assert_eq!(parsed.get("trace").map(String::as_str), Some("t.jsonl"));
    }
}
