//! TCP segments: header encoding/decoding with the pseudo-header
//! checksum.
//!
//! Both players "can use either TCP or UDP as a transport protocol for
//! streaming data" (§2.D); the paper forced UDP, and §VI proposes the
//! TCP-friendliness follow-up study. The workspace's TCP experiments
//! (see `turb-netsim::tcp`) ride on this wire format.

use crate::checksum::Checksum;
use crate::error::WireError;
use crate::ipv4::IpProtocol;
use bytes::{BufMut, Bytes, BytesMut};
use std::net::Ipv4Addr;

/// Length of a TCP header without options. Like the IPv4 codec, this
/// crate neither emits nor accepts options (MSS is negotiated out of
/// band in the simulator).
pub const TCP_HEADER_LEN: usize = 20;

/// TCP control flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TcpFlags {
    /// Synchronise sequence numbers.
    pub syn: bool,
    /// Acknowledgement field is significant.
    pub ack: bool,
    /// No more data from sender.
    pub fin: bool,
    /// Reset the connection.
    pub rst: bool,
    /// Push function.
    pub psh: bool,
}

impl TcpFlags {
    /// A bare SYN.
    pub const SYN: TcpFlags = TcpFlags {
        syn: true,
        ack: false,
        fin: false,
        rst: false,
        psh: false,
    };
    /// SYN+ACK.
    pub const SYN_ACK: TcpFlags = TcpFlags {
        syn: true,
        ack: true,
        fin: false,
        rst: false,
        psh: false,
    };
    /// A bare ACK.
    pub const ACK: TcpFlags = TcpFlags {
        syn: false,
        ack: true,
        fin: false,
        rst: false,
        psh: false,
    };
    /// FIN+ACK.
    pub const FIN_ACK: TcpFlags = TcpFlags {
        syn: false,
        ack: true,
        fin: true,
        rst: false,
        psh: false,
    };

    fn to_byte(self) -> u8 {
        u8::from(self.fin)
            | u8::from(self.syn) << 1
            | u8::from(self.rst) << 2
            | u8::from(self.psh) << 3
            | u8::from(self.ack) << 4
    }

    fn from_byte(b: u8) -> TcpFlags {
        TcpFlags {
            fin: b & 0x01 != 0,
            syn: b & 0x02 != 0,
            rst: b & 0x04 != 0,
            psh: b & 0x08 != 0,
            ack: b & 0x10 != 0,
        }
    }
}

/// A TCP segment (header without options + payload).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpSegment {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number of the first payload byte (or of the SYN/FIN).
    pub seq: u32,
    /// Acknowledgement number (valid when `flags.ack`).
    pub ack: u32,
    /// Control flags.
    pub flags: TcpFlags,
    /// Advertised receive window, bytes.
    pub window: u16,
    /// Payload.
    pub payload: Bytes,
}

impl TcpSegment {
    /// Sequence space this segment occupies (payload + SYN/FIN).
    pub fn seq_len(&self) -> u32 {
        self.payload.len() as u32 + u32::from(self.flags.syn) + u32::from(self.flags.fin)
    }

    /// Total segment length on the wire.
    pub fn len(&self) -> usize {
        TCP_HEADER_LEN + self.payload.len()
    }

    /// True when the segment carries no payload.
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }

    /// Serialise with a pseudo-header checksum.
    pub fn encode(&self, src: Ipv4Addr, dst: Ipv4Addr) -> Result<Bytes, WireError> {
        if self.len() > usize::from(u16::MAX) {
            return Err(WireError::Oversize {
                what: "tcp",
                limit: usize::from(u16::MAX),
                got: self.len(),
            });
        }
        let mut header = [0u8; TCP_HEADER_LEN];
        header[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        header[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        header[4..8].copy_from_slice(&self.seq.to_be_bytes());
        header[8..12].copy_from_slice(&self.ack.to_be_bytes());
        header[12] = (TCP_HEADER_LEN as u8 / 4) << 4; // data offset
        header[13] = self.flags.to_byte();
        header[14..16].copy_from_slice(&self.window.to_be_bytes());
        // header[16..18] = checksum, zero while summing.
        // header[18..20] = urgent pointer, always zero.
        let mut csum = Checksum::new();
        csum.push_addr(src);
        csum.push_addr(dst);
        csum.push_u16(u16::from(IpProtocol::Tcp.as_u8()));
        csum.push_u16(self.len() as u16);
        csum.push(&header);
        csum.push(&self.payload);
        header[16..18].copy_from_slice(&csum.value().to_be_bytes());
        let mut buf = BytesMut::with_capacity(self.len());
        buf.put_slice(&header);
        buf.put_slice(&self.payload);
        Ok(buf.freeze())
    }

    /// Parse and verify a segment transmitted between `src` and `dst`.
    pub fn decode(data: &[u8], src: Ipv4Addr, dst: Ipv4Addr) -> Result<Self, WireError> {
        if data.len() < TCP_HEADER_LEN {
            return Err(WireError::Truncated {
                what: "tcp",
                need: TCP_HEADER_LEN,
                got: data.len(),
            });
        }
        let data_offset = usize::from(data[12] >> 4) * 4;
        if data_offset != TCP_HEADER_LEN {
            return Err(WireError::Malformed {
                what: "tcp",
                field: "data_offset",
            });
        }
        let mut csum = Checksum::new();
        csum.push_addr(src);
        csum.push_addr(dst);
        csum.push_u16(u16::from(IpProtocol::Tcp.as_u8()));
        csum.push_u16(data.len() as u16);
        csum.push(data);
        if csum.value() != 0 {
            return Err(WireError::BadChecksum { what: "tcp" });
        }
        Ok(TcpSegment {
            src_port: u16::from_be_bytes([data[0], data[1]]),
            dst_port: u16::from_be_bytes([data[2], data[3]]),
            seq: u32::from_be_bytes([data[4], data[5], data[6], data[7]]),
            ack: u32::from_be_bytes([data[8], data[9], data[10], data[11]]),
            flags: TcpFlags::from_byte(data[13]),
            window: u16::from_be_bytes([data[14], data[15]]),
            payload: Bytes::copy_from_slice(&data[TCP_HEADER_LEN..]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: Ipv4Addr = Ipv4Addr::new(130, 215, 36, 10);
    const DST: Ipv4Addr = Ipv4Addr::new(204, 71, 0, 33);

    fn segment() -> TcpSegment {
        TcpSegment {
            src_port: 33000,
            dst_port: 554,
            seq: 0xdead_beef,
            ack: 0x0102_0304,
            flags: TcpFlags::ACK,
            window: 65535,
            payload: Bytes::from_static(b"stream bytes"),
        }
    }

    #[test]
    fn roundtrip() {
        let s = segment();
        let encoded = s.encode(SRC, DST).unwrap();
        assert_eq!(encoded.len(), s.len());
        assert_eq!(TcpSegment::decode(&encoded, SRC, DST).unwrap(), s);
    }

    #[test]
    fn flags_roundtrip() {
        for flags in [
            TcpFlags::SYN,
            TcpFlags::SYN_ACK,
            TcpFlags::ACK,
            TcpFlags::FIN_ACK,
            TcpFlags {
                rst: true,
                psh: true,
                ..TcpFlags::default()
            },
        ] {
            let mut s = segment();
            s.flags = flags;
            let decoded = TcpSegment::decode(&s.encode(SRC, DST).unwrap(), SRC, DST).unwrap();
            assert_eq!(decoded.flags, flags);
        }
    }

    #[test]
    fn seq_len_counts_syn_and_fin() {
        let mut s = segment();
        assert_eq!(s.seq_len(), 12);
        s.flags = TcpFlags::SYN;
        s.payload = Bytes::new();
        assert_eq!(s.seq_len(), 1);
        assert!(s.is_empty());
        s.flags = TcpFlags::FIN_ACK;
        assert_eq!(s.seq_len(), 1);
    }

    #[test]
    fn corruption_is_detected() {
        let s = segment();
        let mut encoded = s.encode(SRC, DST).unwrap().to_vec();
        encoded[7] ^= 0x40; // mangle seq
        assert_eq!(
            TcpSegment::decode(&encoded, SRC, DST).unwrap_err(),
            WireError::BadChecksum { what: "tcp" }
        );
    }

    #[test]
    fn wrong_pseudo_header_is_detected() {
        let s = segment();
        let encoded = s.encode(SRC, DST).unwrap();
        assert_eq!(
            TcpSegment::decode(&encoded, SRC, Ipv4Addr::new(9, 9, 9, 9)).unwrap_err(),
            WireError::BadChecksum { what: "tcp" }
        );
    }

    #[test]
    fn rejects_options_bearing_headers() {
        let s = segment();
        let mut encoded = s.encode(SRC, DST).unwrap().to_vec();
        encoded[12] = 6 << 4; // data offset 24: options present
        assert!(matches!(
            TcpSegment::decode(&encoded, SRC, DST).unwrap_err(),
            WireError::Malformed {
                field: "data_offset",
                ..
            }
        ));
    }

    #[test]
    fn rejects_truncated() {
        assert!(matches!(
            TcpSegment::decode(&[0u8; 19], SRC, DST).unwrap_err(),
            WireError::Truncated { what: "tcp", .. }
        ));
    }
}
