//! Ethernet II framing — the sniffer's vantage point.

use crate::error::WireError;
use bytes::{BufMut, Bytes, BytesMut};
use core::fmt;

/// Length of an Ethernet II header (dst MAC + src MAC + EtherType).
///
/// We model frames as captured by the paper's sniffer (Ethereal on the
/// receiving host), which sees the 14-byte header but not the trailing
/// FCS — hence a full frame for a 1500-byte IP packet is 1514 bytes,
/// exactly the size the paper reports for MediaPlayer fragments.
pub const ETHERNET_HEADER_LEN: usize = 14;

/// A 48-bit IEEE 802 MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// A locally-administered unicast address derived from a small id,
    /// handy for giving simulated NICs stable, readable addresses.
    pub fn local(id: u32) -> Self {
        let b = id.to_be_bytes();
        MacAddr([0x02, 0x00, b[0], b[1], b[2], b[3]])
    }

    /// True if the least-significant bit of the first octet is set
    /// (group/multicast bit).
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            o[0], o[1], o[2], o[3], o[4], o[5]
        )
    }
}

/// The EtherType of the encapsulated payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EtherType {
    /// IPv4 (`0x0800`) — the only payload the 2002 capture contained.
    Ipv4,
    /// ARP (`0x0806`), decoded but not interpreted further.
    Arp,
    /// Anything else, carried verbatim.
    Other(u16),
}

impl From<u16> for EtherType {
    fn from(v: u16) -> Self {
        match v {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            other => EtherType::Other(other),
        }
    }
}

impl EtherType {
    /// The on-wire 16-bit value.
    pub fn as_u16(self) -> u16 {
        match self {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Other(v) => v,
        }
    }
}

/// An Ethernet II frame: header plus opaque payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EthernetFrame {
    /// Destination MAC address.
    pub dst: MacAddr,
    /// Source MAC address.
    pub src: MacAddr,
    /// Payload type.
    pub ethertype: EtherType,
    /// Encapsulated payload (e.g. an encoded IPv4 packet).
    pub payload: Bytes,
}

impl EthernetFrame {
    /// Wrap an IPv4 payload in a frame.
    pub fn ipv4(dst: MacAddr, src: MacAddr, payload: Bytes) -> Self {
        EthernetFrame {
            dst,
            src,
            ethertype: EtherType::Ipv4,
            payload,
        }
    }

    /// Total frame length as seen by a capture (header + payload, no FCS).
    pub fn wire_len(&self) -> usize {
        ETHERNET_HEADER_LEN + self.payload.len()
    }

    /// Serialise to bytes.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.wire_len());
        buf.put_slice(&self.dst.0);
        buf.put_slice(&self.src.0);
        buf.put_u16(self.ethertype.as_u16());
        buf.put_slice(&self.payload);
        buf.freeze()
    }

    /// Parse a frame from bytes.
    pub fn decode(data: &[u8]) -> Result<Self, WireError> {
        if data.len() < ETHERNET_HEADER_LEN {
            return Err(WireError::Truncated {
                what: "ethernet",
                need: ETHERNET_HEADER_LEN,
                got: data.len(),
            });
        }
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        dst.copy_from_slice(&data[0..6]);
        src.copy_from_slice(&data[6..12]);
        let ethertype = EtherType::from(u16::from_be_bytes([data[12], data[13]]));
        Ok(EthernetFrame {
            dst: MacAddr(dst),
            src: MacAddr(src),
            ethertype,
            payload: Bytes::copy_from_slice(&data[ETHERNET_HEADER_LEN..]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_display() {
        assert_eq!(
            MacAddr([0xde, 0xad, 0xbe, 0xef, 0x00, 0x01]).to_string(),
            "de:ad:be:ef:00:01"
        );
    }

    #[test]
    fn mac_local_is_unicast_and_stable() {
        let a = MacAddr::local(7);
        assert!(!a.is_multicast());
        assert_eq!(a, MacAddr::local(7));
        assert_ne!(a, MacAddr::local(8));
    }

    #[test]
    fn broadcast_is_multicast() {
        assert!(MacAddr::BROADCAST.is_multicast());
    }

    #[test]
    fn ethertype_roundtrip() {
        for v in [0x0800u16, 0x0806, 0x86dd, 0x1234] {
            assert_eq!(EtherType::from(v).as_u16(), v);
        }
        assert_eq!(EtherType::from(0x0800), EtherType::Ipv4);
        assert_eq!(EtherType::from(0x0806), EtherType::Arp);
    }

    #[test]
    fn frame_roundtrip() {
        let f = EthernetFrame::ipv4(
            MacAddr::local(1),
            MacAddr::local(2),
            Bytes::from_static(b"hello ethernet"),
        );
        let encoded = f.encode();
        assert_eq!(encoded.len(), f.wire_len());
        let g = EthernetFrame::decode(&encoded).unwrap();
        assert_eq!(f, g);
    }

    #[test]
    fn decode_rejects_short_buffer() {
        let err = EthernetFrame::decode(&[0u8; 13]).unwrap_err();
        assert!(matches!(
            err,
            WireError::Truncated {
                what: "ethernet",
                ..
            }
        ));
    }

    #[test]
    fn mtu_frame_is_1514_bytes() {
        let f = EthernetFrame::ipv4(
            MacAddr::local(1),
            MacAddr::local(2),
            Bytes::from(vec![0u8; crate::DEFAULT_MTU]),
        );
        assert_eq!(f.wire_len(), 1514);
    }

    #[test]
    fn empty_payload_frame_roundtrip() {
        let f = EthernetFrame::ipv4(MacAddr::local(1), MacAddr::local(2), Bytes::new());
        let g = EthernetFrame::decode(&f.encode()).unwrap();
        assert_eq!(g.payload.len(), 0);
    }
}
