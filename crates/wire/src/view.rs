//! Lazy, zero-copy packet views.
//!
//! [`PacketView`] wraps one *encoded* IPv4 packet sitting in a shared
//! refcounted buffer and answers header questions by reading bytes in
//! place — no field-by-field decode, no payload copy. Construction
//! runs the same validation as [`Ipv4Packet::decode`] (version, IHL,
//! stored length, header checksum), so every accessor afterwards is
//! infallible.
//!
//! This is the read-side half of the workspace's zero-copy path: the
//! capture/pcap reader keeps each frame's bytes in one `Bytes` and
//! parses IP/UDP headers through a view, materialising an owned
//! [`Ipv4Packet`] (still sharing the payload) only when a caller
//! actually needs one.

use crate::error::WireError;
use crate::ipv4::{IpProtocol, Ipv4Packet, IPV4_HEADER_LEN};
use crate::udp::UDP_HEADER_LEN;
use bytes::Bytes;
use std::net::Ipv4Addr;

/// A validated view over one encoded IPv4 packet in a shared buffer.
#[derive(Debug, Clone)]
pub struct PacketView {
    /// Exactly `total_length` bytes: any link-layer trailer/padding is
    /// trimmed at construction, so slicing stays O(1) afterwards.
    data: Bytes,
}

impl PacketView {
    /// Validate the header and wrap `data`. Trailing padding beyond
    /// the IP total length (legal in captured Ethernet frames) is
    /// sliced off, still without copying.
    pub fn new(data: Bytes) -> Result<Self, WireError> {
        let total_len = Ipv4Packet::validate_header(&data)?;
        let data = if data.len() == total_len {
            data
        } else {
            data.slice(..total_len)
        };
        Ok(PacketView { data })
    }

    /// The full encoded packet (header + payload), shared.
    pub fn as_bytes(&self) -> &Bytes {
        &self.data
    }

    /// On-wire total length (header + payload).
    pub fn total_len(&self) -> usize {
        self.data.len()
    }

    /// Type-of-service byte.
    pub fn tos(&self) -> u8 {
        self.data[1]
    }

    /// IPv4 identification (the fragment-group key).
    pub fn identification(&self) -> u16 {
        u16::from_be_bytes([self.data[4], self.data[5]])
    }

    /// Don't-fragment flag.
    pub fn dont_fragment(&self) -> bool {
        self.data[6] & 0x40 != 0
    }

    /// More-fragments flag.
    pub fn more_fragments(&self) -> bool {
        self.data[6] & 0x20 != 0
    }

    /// Fragment offset in 8-byte units.
    pub fn fragment_offset(&self) -> u16 {
        u16::from_be_bytes([self.data[6], self.data[7]]) & 0x1fff
    }

    /// Remaining time-to-live.
    pub fn ttl(&self) -> u8 {
        self.data[8]
    }

    /// Transport protocol.
    pub fn protocol(&self) -> IpProtocol {
        IpProtocol::from(self.data[9])
    }

    /// Source address.
    pub fn src(&self) -> Ipv4Addr {
        Ipv4Addr::new(self.data[12], self.data[13], self.data[14], self.data[15])
    }

    /// Destination address.
    pub fn dst(&self) -> Ipv4Addr {
        Ipv4Addr::new(self.data[16], self.data[17], self.data[18], self.data[19])
    }

    /// The transport payload as a shared slice of the same buffer.
    pub fn payload(&self) -> Bytes {
        self.data.slice(IPV4_HEADER_LEN..)
    }

    /// `(src_port, dst_port)` peeked straight from the buffer for an
    /// unfragmented UDP packet; `None` otherwise (non-UDP, truncated,
    /// or a non-first fragment whose payload has no UDP header).
    pub fn udp_ports(&self) -> Option<(u16, u16)> {
        if self.protocol() != IpProtocol::Udp || self.fragment_offset() != 0 {
            return None;
        }
        let udp = &self.data[IPV4_HEADER_LEN..];
        if udp.len() < UDP_HEADER_LEN {
            return None;
        }
        Some((
            u16::from_be_bytes([udp[0], udp[1]]),
            u16::from_be_bytes([udp[2], udp[3]]),
        ))
    }

    /// Materialise an owned [`Ipv4Packet`]. The payload still shares
    /// this view's buffer (refcount bump, no copy).
    pub fn to_packet(&self) -> Ipv4Packet {
        Ipv4Packet::decode_shared(&self.data).expect("header validated at construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    fn sample() -> Ipv4Packet {
        let udp = crate::udp::UdpDatagram::new(7070, 1755, Bytes::from_static(b"media data"));
        let src = Ipv4Addr::new(130, 215, 36, 1);
        let dst = Ipv4Addr::new(204, 71, 200, 33);
        let payload = udp.encode(src, dst).unwrap();
        Ipv4Packet::new(src, dst, IpProtocol::Udp, 0xbeef, payload)
    }

    #[test]
    fn header_accessors_match_full_decode() {
        let packet = sample();
        let encoded = packet.encode().unwrap();
        let view = PacketView::new(encoded.clone()).unwrap();
        let decoded = Ipv4Packet::decode(&encoded).unwrap();
        assert_eq!(view.total_len(), decoded.total_len());
        assert_eq!(view.tos(), decoded.tos);
        assert_eq!(view.identification(), decoded.identification);
        assert_eq!(view.dont_fragment(), decoded.dont_fragment);
        assert_eq!(view.more_fragments(), decoded.more_fragments);
        assert_eq!(view.fragment_offset(), decoded.fragment_offset);
        assert_eq!(view.ttl(), decoded.ttl);
        assert_eq!(view.protocol(), decoded.protocol);
        assert_eq!(view.src(), decoded.src);
        assert_eq!(view.dst(), decoded.dst);
        assert_eq!(view.payload().as_ref(), decoded.payload.as_ref());
        assert_eq!(view.udp_ports(), Some((7070, 1755)));
        assert_eq!(view.to_packet(), decoded);
    }

    #[test]
    fn payload_and_packet_share_the_buffer() {
        let encoded = sample().encode().unwrap();
        let base = encoded.as_ref().as_ptr() as usize;
        let view = PacketView::new(encoded).unwrap();
        let payload = view.payload();
        assert_eq!(payload.as_ref().as_ptr() as usize, base + IPV4_HEADER_LEN);
        let packet = view.to_packet();
        assert_eq!(
            packet.payload.as_ref().as_ptr() as usize,
            base + IPV4_HEADER_LEN
        );
    }

    #[test]
    fn trailing_padding_is_trimmed_without_copying() {
        let encoded = sample().encode().unwrap();
        let total = encoded.len();
        let mut padded = BytesMut::with_capacity(total + 6);
        padded.extend_from_slice(&encoded);
        padded.extend_from_slice(&[0u8; 6]); // Ethernet min-frame pad
        let view = PacketView::new(padded.freeze()).unwrap();
        assert_eq!(view.total_len(), total);
        assert_eq!(view.udp_ports(), Some((7070, 1755)));
    }

    #[test]
    fn rejects_corrupt_headers() {
        let encoded = sample().encode().unwrap();
        let mut bad = encoded.as_ref().to_vec();
        bad[8] ^= 0xff; // flip TTL without fixing the checksum
        assert!(matches!(
            PacketView::new(Bytes::from(bad)),
            Err(WireError::BadChecksum { what: "ipv4" })
        ));
        assert!(PacketView::new(Bytes::from_static(&[0u8; 5])).is_err());
    }

    #[test]
    fn udp_ports_refuses_non_first_fragments() {
        let mut packet = sample();
        packet.fragment_offset = 185;
        packet.more_fragments = true;
        let view = PacketView::new(packet.encode().unwrap()).unwrap();
        assert_eq!(view.udp_ports(), None);
    }
}
