//! The application-layer media header carried inside every streaming
//! UDP payload in the simulation.
//!
//! The real players use proprietary framing (MMS/WMS for MediaPlayer,
//! RDT for RealPlayer); the trackers in the paper read sequence and
//! frame statistics out of the player SDKs instead of the wire. Our
//! substitute puts the minimum fields the trackers need — player id,
//! packet sequence number, media frame number, media timestamp — into a
//! fixed 20-byte header at the start of each datagram, padded out to
//! the desired packet size with deterministic filler.

use crate::error::WireError;
use bytes::{BufMut, Bytes, BytesMut};

/// Length of the media header.
pub const MEDIA_HEADER_LEN: usize = 20;

/// Magic tag so stray traffic is never misparsed as media.
const MAGIC: u16 = 0x7541; // "uA" for turbulence Analysis

/// Which player model produced a stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PlayerId {
    /// Windows MediaPlayer model.
    MediaPlayer,
    /// RealPlayer model.
    RealPlayer,
}

impl PlayerId {
    fn as_u8(self) -> u8 {
        match self {
            PlayerId::MediaPlayer => 0,
            PlayerId::RealPlayer => 1,
        }
    }

    fn from_u8(v: u8) -> Result<Self, WireError> {
        match v {
            0 => Ok(PlayerId::MediaPlayer),
            1 => Ok(PlayerId::RealPlayer),
            _ => Err(WireError::Malformed {
                what: "media",
                field: "player",
            }),
        }
    }

    /// Short label used in reports ("WMP" / "Real").
    pub fn label(self) -> &'static str {
        match self {
            PlayerId::MediaPlayer => "WMP",
            PlayerId::RealPlayer => "Real",
        }
    }
}

/// The media header prepended to every streaming payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MediaHeader {
    /// Producing player model.
    pub player: PlayerId,
    /// Monotone per-stream packet sequence number.
    pub sequence: u32,
    /// Media frame this packet carries (several packets may share one
    /// frame; one MediaPlayer application frame may span many packets).
    pub frame_number: u32,
    /// Media timestamp in milliseconds from the start of the clip.
    pub media_time_ms: u32,
    /// True while the server is in its initial-buffering phase —
    /// lets the analysis separate buffering from steady playout
    /// (Figures 10 and 11) exactly as the paper inferred it from
    /// bandwidth-over-time.
    pub buffering: bool,
}

impl MediaHeader {
    /// Serialise header followed by `payload_len` bytes of filler so
    /// the total application payload is `MEDIA_HEADER_LEN + payload_len`.
    pub fn encode_with_padding(&self, padding: usize) -> Bytes {
        let mut buf = BytesMut::with_capacity(MEDIA_HEADER_LEN + padding);
        buf.put_u16(MAGIC);
        buf.put_u8(self.player.as_u8());
        buf.put_u8(u8::from(self.buffering));
        buf.put_u32(self.sequence);
        buf.put_u32(self.frame_number);
        buf.put_u32(self.media_time_ms);
        buf.put_u32(padding as u32);
        // Deterministic filler derived from the sequence number, so
        // payload bytes differ across packets (checksums exercise real
        // data) without any RNG. Byte `i` is
        // `(seed + i) >> (i % 4 * 8)`; this is the hottest loop in a
        // streaming run (every payload byte of every datagram passes
        // through it), so it fills a resized tail in place, unrolled
        // to one four-byte group per iteration instead of a
        // capacity-checked `put_u8` per byte.
        let seed = self.sequence.wrapping_mul(0x9e37_79b9);
        let start = buf.len();
        buf.resize(start + padding, 0);
        let fill = &mut buf[start..];
        let mut groups = fill.chunks_exact_mut(4);
        let mut i = 0u32;
        for group in &mut groups {
            let s = seed.wrapping_add(i);
            group[0] = s as u8;
            group[1] = (s.wrapping_add(1) >> 8) as u8;
            group[2] = (s.wrapping_add(2) >> 16) as u8;
            group[3] = (s.wrapping_add(3) >> 24) as u8;
            i = i.wrapping_add(4);
        }
        for (j, byte) in groups.into_remainder().iter_mut().enumerate() {
            let i = i as usize + j;
            *byte = (seed.wrapping_add(i as u32) >> (i % 4 * 8)) as u8;
        }
        buf.freeze()
    }

    /// Parse the header from the front of a payload.
    pub fn decode(data: &[u8]) -> Result<Self, WireError> {
        if data.len() < MEDIA_HEADER_LEN {
            return Err(WireError::Truncated {
                what: "media",
                need: MEDIA_HEADER_LEN,
                got: data.len(),
            });
        }
        if u16::from_be_bytes([data[0], data[1]]) != MAGIC {
            return Err(WireError::Malformed {
                what: "media",
                field: "magic",
            });
        }
        let declared_padding =
            u32::from_be_bytes([data[16], data[17], data[18], data[19]]) as usize;
        if MEDIA_HEADER_LEN + declared_padding != data.len() {
            return Err(WireError::Malformed {
                what: "media",
                field: "padding_len",
            });
        }
        Ok(MediaHeader {
            player: PlayerId::from_u8(data[2])?,
            buffering: data[3] != 0,
            sequence: u32::from_be_bytes([data[4], data[5], data[6], data[7]]),
            frame_number: u32::from_be_bytes([data[8], data[9], data[10], data[11]]),
            media_time_ms: u32::from_be_bytes([data[12], data[13], data[14], data[15]]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> MediaHeader {
        MediaHeader {
            player: PlayerId::RealPlayer,
            sequence: 1234,
            frame_number: 56,
            media_time_ms: 7890,
            buffering: true,
        }
    }

    #[test]
    fn roundtrip_with_padding() {
        let h = header();
        for padding in [0usize, 1, 100, 1452] {
            let bytes = h.encode_with_padding(padding);
            assert_eq!(bytes.len(), MEDIA_HEADER_LEN + padding);
            assert_eq!(MediaHeader::decode(&bytes).unwrap(), h);
        }
    }

    #[test]
    fn padding_filler_matches_the_per_byte_definition() {
        // The unrolled fill must reproduce `(seed + i) >> (i % 4 * 8)`
        // exactly, including the non-multiple-of-four tails.
        let h = header();
        let seed = h.sequence.wrapping_mul(0x9e37_79b9);
        for padding in [0usize, 1, 2, 3, 4, 5, 63, 64, 65, 1452] {
            let bytes = h.encode_with_padding(padding);
            for i in 0..padding {
                assert_eq!(
                    bytes[MEDIA_HEADER_LEN + i],
                    (seed.wrapping_add(i as u32) >> (i % 4 * 8)) as u8,
                    "padding {padding} byte {i}"
                );
            }
        }
    }

    #[test]
    fn players_roundtrip() {
        for p in [PlayerId::MediaPlayer, PlayerId::RealPlayer] {
            let mut h = header();
            h.player = p;
            let bytes = h.encode_with_padding(4);
            assert_eq!(MediaHeader::decode(&bytes).unwrap().player, p);
        }
        assert_eq!(PlayerId::MediaPlayer.label(), "WMP");
        assert_eq!(PlayerId::RealPlayer.label(), "Real");
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = header().encode_with_padding(4).to_vec();
        bytes[0] = 0;
        assert!(matches!(
            MediaHeader::decode(&bytes).unwrap_err(),
            WireError::Malformed { field: "magic", .. }
        ));
    }

    #[test]
    fn rejects_truncated() {
        let bytes = header().encode_with_padding(0);
        assert!(MediaHeader::decode(&bytes[..MEDIA_HEADER_LEN - 1]).is_err());
    }

    #[test]
    fn rejects_inconsistent_padding_length() {
        let mut bytes = header().encode_with_padding(8).to_vec();
        bytes.truncate(MEDIA_HEADER_LEN + 4);
        assert!(matches!(
            MediaHeader::decode(&bytes).unwrap_err(),
            WireError::Malformed {
                field: "padding_len",
                ..
            }
        ));
    }

    #[test]
    fn filler_differs_across_sequences() {
        let mut a = header();
        a.sequence = 1;
        let mut b = header();
        b.sequence = 2;
        assert_ne!(
            a.encode_with_padding(64)[MEDIA_HEADER_LEN..],
            b.encode_with_padding(64)[MEDIA_HEADER_LEN..]
        );
    }
}
