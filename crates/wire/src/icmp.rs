//! ICMPv4 messages: exactly the subset needed to implement the paper's
//! methodology tools — `ping` (echo request/reply, §3.A Figure 1) and
//! `tracert` (time-exceeded, §3.A Figure 2), plus destination
//! unreachable for port probes.

use crate::checksum::Checksum;
use crate::error::WireError;
use bytes::{BufMut, Bytes, BytesMut};

/// Minimum ICMP message length (type, code, checksum, 4 bytes of body).
pub const ICMP_HEADER_LEN: usize = 8;

/// A decoded ICMPv4 message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IcmpMessage {
    /// Echo request (type 8): `ping` probe.
    EchoRequest {
        /// Echo identifier (distinguishes concurrent pingers).
        ident: u16,
        /// Echo sequence number.
        seq: u16,
        /// Opaque probe payload (commonly a timestamp).
        payload: Bytes,
    },
    /// Echo reply (type 0).
    EchoReply {
        /// Identifier copied from the request.
        ident: u16,
        /// Sequence number copied from the request.
        seq: u16,
        /// Payload copied from the request.
        payload: Bytes,
    },
    /// Time exceeded in transit (type 11, code 0): the router response
    /// `tracert` elicits with ascending TTLs.
    TimeExceeded {
        /// Leading bytes of the expired datagram (IP header + 8 bytes).
        original: Bytes,
    },
    /// Destination unreachable (type 3) with the given code
    /// (3 = port unreachable, the UDP-traceroute terminator).
    DestinationUnreachable {
        /// Unreachable code.
        code: u8,
        /// Leading bytes of the offending datagram.
        original: Bytes,
    },
}

impl IcmpMessage {
    /// The on-wire (type, code) pair.
    pub fn type_code(&self) -> (u8, u8) {
        match self {
            IcmpMessage::EchoReply { .. } => (0, 0),
            IcmpMessage::EchoRequest { .. } => (8, 0),
            IcmpMessage::TimeExceeded { .. } => (11, 0),
            IcmpMessage::DestinationUnreachable { code, .. } => (3, *code),
        }
    }

    /// Serialise with checksum.
    pub fn encode(&self) -> Bytes {
        let (ty, code) = self.type_code();
        let (word, body): (u32, &Bytes) = match self {
            IcmpMessage::EchoRequest {
                ident,
                seq,
                payload,
            }
            | IcmpMessage::EchoReply {
                ident,
                seq,
                payload,
            } => ((u32::from(*ident) << 16) | u32::from(*seq), payload),
            IcmpMessage::TimeExceeded { original }
            | IcmpMessage::DestinationUnreachable { original, .. } => (0, original),
        };
        let mut buf = BytesMut::with_capacity(ICMP_HEADER_LEN + body.len());
        buf.put_u8(ty);
        buf.put_u8(code);
        buf.put_u16(0); // checksum placeholder
        buf.put_u32(word);
        buf.put_slice(body);
        let mut csum = Checksum::new();
        csum.push(&buf);
        let value = csum.value();
        buf[2..4].copy_from_slice(&value.to_be_bytes());
        buf.freeze()
    }

    /// Parse and verify a message.
    pub fn decode(data: &[u8]) -> Result<Self, WireError> {
        Self::check_header(data)?;
        let body = Bytes::copy_from_slice(&data[ICMP_HEADER_LEN..]);
        Self::classify(data, body)
    }

    /// Zero-copy [`IcmpMessage::decode`]: the body is a refcounted
    /// slice of `data`, not a fresh allocation.
    pub fn decode_shared(data: &Bytes) -> Result<Self, WireError> {
        Self::check_header(data)?;
        let body = data.slice(ICMP_HEADER_LEN..);
        Self::classify(data, body)
    }

    fn check_header(data: &[u8]) -> Result<(), WireError> {
        if data.len() < ICMP_HEADER_LEN {
            return Err(WireError::Truncated {
                what: "icmp",
                need: ICMP_HEADER_LEN,
                got: data.len(),
            });
        }
        if !crate::checksum::verify(data) {
            return Err(WireError::BadChecksum { what: "icmp" });
        }
        Ok(())
    }

    fn classify(data: &[u8], body: Bytes) -> Result<Self, WireError> {
        let ident = u16::from_be_bytes([data[4], data[5]]);
        let seq = u16::from_be_bytes([data[6], data[7]]);
        match (data[0], data[1]) {
            (0, 0) => Ok(IcmpMessage::EchoReply {
                ident,
                seq,
                payload: body,
            }),
            (8, 0) => Ok(IcmpMessage::EchoRequest {
                ident,
                seq,
                payload: body,
            }),
            (11, 0) => Ok(IcmpMessage::TimeExceeded { original: body }),
            (3, code) => Ok(IcmpMessage::DestinationUnreachable {
                code,
                original: body,
            }),
            _ => Err(WireError::Malformed {
                what: "icmp",
                field: "type/code",
            }),
        }
    }

    /// Build the reply matching an echo request; `None` for other types.
    pub fn reply_to(&self) -> Option<IcmpMessage> {
        match self {
            IcmpMessage::EchoRequest {
                ident,
                seq,
                payload,
            } => Some(IcmpMessage::EchoReply {
                ident: *ident,
                seq: *seq,
                payload: payload.clone(),
            }),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_roundtrip() {
        let m = IcmpMessage::EchoRequest {
            ident: 0x1234,
            seq: 7,
            payload: Bytes::from_static(b"timestamp"),
        };
        let n = IcmpMessage::decode(&m.encode()).unwrap();
        assert_eq!(m, n);
    }

    #[test]
    fn decode_shared_borrows_the_encoded_buffer() {
        let m = IcmpMessage::EchoRequest {
            ident: 0x1234,
            seq: 7,
            payload: Bytes::from_static(b"timestamp"),
        };
        let encoded = m.encode();
        let n = IcmpMessage::decode_shared(&encoded).unwrap();
        assert_eq!(m, n);
        let IcmpMessage::EchoRequest { payload, .. } = n else {
            panic!("expected echo request");
        };
        // The body aliases the encoded buffer instead of copying.
        let base = encoded.as_ref().as_ptr() as usize;
        assert_eq!(payload.as_ref().as_ptr() as usize, base + ICMP_HEADER_LEN);
    }

    #[test]
    fn reply_mirrors_request() {
        let m = IcmpMessage::EchoRequest {
            ident: 9,
            seq: 42,
            payload: Bytes::from_static(b"x"),
        };
        let r = m.reply_to().unwrap();
        match r {
            IcmpMessage::EchoReply {
                ident,
                seq,
                ref payload,
            } => {
                assert_eq!((ident, seq), (9, 42));
                assert_eq!(payload.as_ref(), b"x");
            }
            _ => panic!("expected echo reply"),
        }
        assert!(r.reply_to().is_none());
    }

    #[test]
    fn time_exceeded_roundtrip() {
        let m = IcmpMessage::TimeExceeded {
            original: Bytes::from_static(&[0x45; 28]),
        };
        assert_eq!(IcmpMessage::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn unreachable_roundtrip_preserves_code() {
        let m = IcmpMessage::DestinationUnreachable {
            code: 3,
            original: Bytes::from_static(&[0u8; 28]),
        };
        match IcmpMessage::decode(&m.encode()).unwrap() {
            IcmpMessage::DestinationUnreachable { code, .. } => assert_eq!(code, 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn corrupted_message_fails_checksum() {
        let m = IcmpMessage::EchoRequest {
            ident: 1,
            seq: 1,
            payload: Bytes::from_static(b"abc"),
        };
        let mut bytes = m.encode().to_vec();
        bytes[0] = 0; // flip request into reply without fixing checksum
        assert_eq!(
            IcmpMessage::decode(&bytes).unwrap_err(),
            WireError::BadChecksum { what: "icmp" }
        );
    }

    #[test]
    fn unknown_type_is_malformed() {
        // Type 13 (timestamp) is valid ICMP but outside our subset.
        let mut buf = vec![13u8, 0, 0, 0, 0, 0, 0, 0];
        let c = crate::checksum::checksum(&buf);
        buf[2..4].copy_from_slice(&c.to_be_bytes());
        assert!(matches!(
            IcmpMessage::decode(&buf).unwrap_err(),
            WireError::Malformed {
                field: "type/code",
                ..
            }
        ));
    }

    #[test]
    fn rejects_truncated() {
        assert!(matches!(
            IcmpMessage::decode(&[8u8, 0, 0]).unwrap_err(),
            WireError::Truncated { what: "icmp", .. }
        ));
    }
}
