//! UDP datagrams with the IPv4 pseudo-header checksum.

use crate::checksum::Checksum;
use crate::error::WireError;
use crate::ipv4::IpProtocol;
use bytes::{BufMut, Bytes, BytesMut};
use std::net::Ipv4Addr;

/// Length of a UDP header.
pub const UDP_HEADER_LEN: usize = 8;

/// A UDP datagram. The checksum is computed over the IPv4 pseudo-header,
/// so encoding and decoding take the enclosing addresses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UdpDatagram {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Application payload.
    pub payload: Bytes,
}

impl UdpDatagram {
    /// Construct a datagram.
    pub fn new(src_port: u16, dst_port: u16, payload: Bytes) -> Self {
        UdpDatagram {
            src_port,
            dst_port,
            payload,
        }
    }

    /// Total UDP length (header + payload).
    pub fn len(&self) -> usize {
        UDP_HEADER_LEN + self.payload.len()
    }

    /// True when the payload is empty (header-only datagram).
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }

    /// Serialise with a pseudo-header checksum for `src`/`dst`.
    pub fn encode(&self, src: Ipv4Addr, dst: Ipv4Addr) -> Result<Bytes, WireError> {
        if self.len() > usize::from(u16::MAX) {
            return Err(WireError::Oversize {
                what: "udp",
                limit: usize::from(u16::MAX),
                got: self.len(),
            });
        }
        let len = self.len() as u16;
        let mut header = [0u8; UDP_HEADER_LEN];
        header[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        header[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        header[4..6].copy_from_slice(&len.to_be_bytes());
        let mut csum = Checksum::new();
        csum.push_addr(src);
        csum.push_addr(dst);
        csum.push_u16(u16::from(IpProtocol::Udp.as_u8()));
        csum.push_u16(len);
        csum.push(&header);
        csum.push(&self.payload);
        let mut value = csum.value();
        if value == 0 {
            // RFC 768: an all-zero computed checksum is transmitted as
            // all ones; zero on the wire means "no checksum".
            value = 0xffff;
        }
        header[6..8].copy_from_slice(&value.to_be_bytes());
        let mut buf = BytesMut::with_capacity(self.len());
        buf.put_slice(&header);
        buf.put_slice(&self.payload);
        Ok(buf.freeze())
    }

    /// Parse and verify a datagram transmitted between `src` and `dst`.
    pub fn decode(data: &[u8], src: Ipv4Addr, dst: Ipv4Addr) -> Result<Self, WireError> {
        let (src_port, dst_port, len) = Self::parse_header(data, src, dst)?;
        Ok(UdpDatagram {
            src_port,
            dst_port,
            payload: Bytes::copy_from_slice(&data[UDP_HEADER_LEN..len]),
        })
    }

    /// Zero-copy [`UdpDatagram::decode`]: the payload is a refcounted
    /// slice of `data`, not a fresh allocation. Used on the delivery
    /// hot path, where the datagram bytes already live in a shared
    /// buffer.
    pub fn decode_shared(data: &Bytes, src: Ipv4Addr, dst: Ipv4Addr) -> Result<Self, WireError> {
        let (src_port, dst_port, len) = Self::parse_header(data, src, dst)?;
        Ok(UdpDatagram {
            src_port,
            dst_port,
            payload: data.slice(UDP_HEADER_LEN..len),
        })
    }

    /// Shared validation: header bounds, stored length, pseudo-header
    /// checksum. Returns `(src_port, dst_port, datagram_len)`.
    fn parse_header(
        data: &[u8],
        src: Ipv4Addr,
        dst: Ipv4Addr,
    ) -> Result<(u16, u16, usize), WireError> {
        if data.len() < UDP_HEADER_LEN {
            return Err(WireError::Truncated {
                what: "udp",
                need: UDP_HEADER_LEN,
                got: data.len(),
            });
        }
        let len = usize::from(u16::from_be_bytes([data[4], data[5]]));
        if len < UDP_HEADER_LEN || len > data.len() {
            return Err(WireError::Malformed {
                what: "udp",
                field: "length",
            });
        }
        let stored = u16::from_be_bytes([data[6], data[7]]);
        if stored != 0 {
            let mut csum = Checksum::new();
            csum.push_addr(src);
            csum.push_addr(dst);
            csum.push_u16(u16::from(IpProtocol::Udp.as_u8()));
            csum.push_u16(len as u16);
            csum.push(&data[..len]);
            if csum.value() != 0 {
                return Err(WireError::BadChecksum { what: "udp" });
            }
        }
        let src_port = u16::from_be_bytes([data[0], data[1]]);
        let dst_port = u16::from_be_bytes([data[2], data[3]]);
        Ok((src_port, dst_port, len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: Ipv4Addr = Ipv4Addr::new(130, 215, 36, 1);
    const DST: Ipv4Addr = Ipv4Addr::new(204, 71, 200, 33);

    #[test]
    fn roundtrip() {
        let d = UdpDatagram::new(7070, 1755, Bytes::from_static(b"media data"));
        let encoded = d.encode(SRC, DST).unwrap();
        assert_eq!(encoded.len(), d.len());
        let e = UdpDatagram::decode(&encoded, SRC, DST).unwrap();
        assert_eq!(d, e);
    }

    #[test]
    fn decode_shared_borrows_the_encoded_buffer() {
        let d = UdpDatagram::new(7070, 1755, Bytes::from_static(b"media data"));
        let encoded = d.encode(SRC, DST).unwrap();
        let e = UdpDatagram::decode_shared(&encoded, SRC, DST).unwrap();
        assert_eq!(d, e);
        // The payload aliases the encoded buffer instead of copying.
        let base = encoded.as_ref().as_ptr() as usize;
        let payload = e.payload.as_ref().as_ptr() as usize;
        assert_eq!(payload, base + UDP_HEADER_LEN);
    }

    #[test]
    fn corrupted_payload_fails_checksum() {
        let d = UdpDatagram::new(1, 2, Bytes::from_static(b"xyz"));
        let mut encoded = d.encode(SRC, DST).unwrap().to_vec();
        *encoded.last_mut().unwrap() ^= 0x01;
        assert_eq!(
            UdpDatagram::decode(&encoded, SRC, DST).unwrap_err(),
            WireError::BadChecksum { what: "udp" }
        );
    }

    #[test]
    fn wrong_pseudo_header_fails_checksum() {
        let d = UdpDatagram::new(1, 2, Bytes::from_static(b"xyz"));
        let encoded = d.encode(SRC, DST).unwrap();
        let other = Ipv4Addr::new(10, 0, 0, 1);
        assert_eq!(
            UdpDatagram::decode(&encoded, SRC, other).unwrap_err(),
            WireError::BadChecksum { what: "udp" }
        );
    }

    #[test]
    fn zero_checksum_means_unchecked() {
        let d = UdpDatagram::new(1, 2, Bytes::from_static(b"xyz"));
        let mut encoded = d.encode(SRC, DST).unwrap().to_vec();
        encoded[6] = 0;
        encoded[7] = 0;
        // Decodes fine even against the wrong pseudo-header.
        let other = Ipv4Addr::new(10, 0, 0, 1);
        let e = UdpDatagram::decode(&encoded, SRC, other).unwrap();
        assert_eq!(e.payload, d.payload);
    }

    #[test]
    fn empty_payload() {
        let d = UdpDatagram::new(9, 9, Bytes::new());
        assert!(d.is_empty());
        let e = UdpDatagram::decode(&d.encode(SRC, DST).unwrap(), SRC, DST).unwrap();
        assert!(e.is_empty());
    }

    #[test]
    fn rejects_truncated() {
        assert!(matches!(
            UdpDatagram::decode(&[0u8; 7], SRC, DST).unwrap_err(),
            WireError::Truncated { what: "udp", .. }
        ));
    }

    #[test]
    fn rejects_bad_length_field() {
        let d = UdpDatagram::new(1, 2, Bytes::from_static(b"abcdef"));
        let mut encoded = d.encode(SRC, DST).unwrap().to_vec();
        encoded[4] = 0xff;
        encoded[5] = 0xff; // declared length far beyond the buffer
        assert!(matches!(
            UdpDatagram::decode(&encoded, SRC, DST).unwrap_err(),
            WireError::Malformed {
                field: "length",
                ..
            }
        ));
    }

    #[test]
    fn rejects_oversize_payload() {
        let d = UdpDatagram::new(1, 2, Bytes::from(vec![0u8; 65536]));
        assert!(matches!(
            d.encode(SRC, DST).unwrap_err(),
            WireError::Oversize { what: "udp", .. }
        ));
    }
}
