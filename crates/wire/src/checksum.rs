//! The Internet checksum (RFC 1071) used by IPv4, UDP and ICMP.

use std::net::Ipv4Addr;

/// Incremental one's-complement sum accumulator.
///
/// Feed it byte slices in any split — a dangling odd byte is carried
/// to the next [`Checksum::push`], so pushing a buffer in pieces gives
/// the same result as pushing it whole regardless of where the cuts
/// fall. Only at [`Checksum::value`] is a still-pending odd byte
/// zero-padded on the right, per RFC 1071.
#[derive(Debug, Clone, Copy, Default)]
pub struct Checksum {
    sum: u64,
    /// High half of a 16-bit word whose low half has not arrived yet:
    /// set when the total bytes pushed so far is odd.
    pending: Option<u8>,
}

impl Checksum {
    /// Start a fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a slice of bytes to the running sum.
    ///
    /// Hot path: this runs over every UDP payload once at encode and
    /// once at delivery. RFC 1071 §2 allows summing in any word width
    /// on any boundary (every 2^16k positional weight is ≡ 1 mod
    /// 2^16−1), so the loop takes 32-bit big-endian words four at a
    /// time into independent accumulators — ~8× the bytes per add of
    /// the naive 16-bit loop, and free of a serial dependency chain —
    /// and defers all folding to [`Checksum::value`].
    pub fn push(&mut self, mut data: &[u8]) {
        if let Some(high) = self.pending.take() {
            let Some((&low, rest)) = data.split_first() else {
                self.pending = Some(high);
                return;
            };
            self.sum += u64::from(u16::from_be_bytes([high, low]));
            data = rest;
        }
        let (mut s0, mut s1, mut s2, mut s3) = (0u64, 0u64, 0u64, 0u64);
        let mut wide = data.chunks_exact(16);
        for c in &mut wide {
            s0 += u64::from(u32::from_be_bytes([c[0], c[1], c[2], c[3]]));
            s1 += u64::from(u32::from_be_bytes([c[4], c[5], c[6], c[7]]));
            s2 += u64::from(u32::from_be_bytes([c[8], c[9], c[10], c[11]]));
            s3 += u64::from(u32::from_be_bytes([c[12], c[13], c[14], c[15]]));
        }
        let mut chunks = wide.remainder().chunks_exact(2);
        for chunk in &mut chunks {
            s0 += u64::from(u16::from_be_bytes([chunk[0], chunk[1]]));
        }
        if let [last] = chunks.remainder() {
            self.pending = Some(*last);
        }
        self.sum += s0 + s1 + s2 + s3;
    }

    /// Add a single big-endian `u16` word.
    pub fn push_u16(&mut self, word: u16) {
        match self.pending {
            None => self.sum += u64::from(word),
            Some(_) => self.push(&word.to_be_bytes()),
        }
    }

    /// Add an IPv4 address (two 16-bit words).
    pub fn push_addr(&mut self, addr: Ipv4Addr) {
        self.push(&addr.octets());
    }

    /// Fold and complement the running sum into the final checksum word.
    /// A still-pending odd byte is zero-padded on the right (RFC 1071).
    pub fn value(self) -> u16 {
        let mut sum = self.sum;
        if let Some(high) = self.pending {
            sum += u64::from(u16::from_be_bytes([high, 0]));
        }
        while sum >> 16 != 0 {
            sum = (sum & 0xffff) + (sum >> 16);
        }
        !(sum as u16)
    }
}

/// One-shot checksum of a byte slice.
pub fn checksum(data: &[u8]) -> u16 {
    let mut c = Checksum::new();
    c.push(data);
    c.value()
}

/// Verify that `data`, which embeds its own checksum field, sums to a
/// valid value (the total including the stored checksum folds to zero,
/// i.e. the recomputed checksum is 0).
pub fn verify(data: &[u8]) -> bool {
    checksum(data) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_worked_example() {
        // The classic example from RFC 1071 §3: bytes 00 01 f2 03 f4 f5 f6 f7.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        // RFC gives the one's complement sum as ddf2, checksum is its complement.
        assert_eq!(checksum(&data), !0xddf2);
    }

    #[test]
    fn odd_length_is_zero_padded() {
        assert_eq!(checksum(&[0xab]), !0xab00);
        assert_eq!(checksum(&[0xab, 0x00]), !0xab00);
    }

    #[test]
    fn empty_slice_checksums_to_ffff() {
        assert_eq!(checksum(&[]), 0xffff);
    }

    #[test]
    fn verify_accepts_data_with_embedded_checksum() {
        // Build a 6-byte "header" whose word 2 is the checksum.
        let mut data = [0x45, 0x00, 0x00, 0x00, 0x12, 0x34];
        let c = checksum(&data);
        data[2..4].copy_from_slice(&c.to_be_bytes());
        assert!(verify(&data));
        // Flip a bit: must fail.
        data[5] ^= 1;
        assert!(!verify(&data));
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data: Vec<u8> = (0..=255u8).collect();
        // Odd chunk size: every push but the last leaves a pending
        // byte, so this exercises the carry on every boundary.
        let mut c = Checksum::new();
        for chunk in data.chunks(7) {
            c.push(chunk);
        }
        assert_eq!(c.value(), checksum(&data));
        // Even pieces still agree.
        let mut c = Checksum::new();
        c.push(&data[..128]);
        c.push(&data[128..]);
        assert_eq!(c.value(), checksum(&data));
    }

    #[test]
    fn every_two_piece_split_matches_one_shot() {
        // Regression for the mid-stream zero-padding bug: splitting at
        // an odd boundary used to pad the first piece and shift the
        // second, yielding a different sum than the one-shot checksum.
        let data: Vec<u8> = (0..67u8).map(|i| i.wrapping_mul(151)).collect();
        let expected = checksum(&data);
        for cut in 0..=data.len() {
            let mut c = Checksum::new();
            c.push(&data[..cut]);
            c.push(&data[cut..]);
            assert_eq!(c.value(), expected, "split at {cut}");
        }
    }

    #[test]
    fn pending_byte_survives_empty_and_odd_pushes() {
        // Three odd pushes with an empty push interleaved: the carry
        // must hop across all of them.
        let data = [0xab, 0xcd, 0xef, 0x01, 0x23];
        let mut c = Checksum::new();
        c.push(&data[..1]);
        c.push(&[]);
        c.push(&data[1..2]);
        c.push(&data[2..]);
        assert_eq!(c.value(), checksum(&data));
    }

    #[test]
    fn push_u16_after_odd_push_keeps_byte_stream_semantics() {
        // push_u16 mid-stream must behave like pushing its two bytes.
        let mut a = Checksum::new();
        a.push(&[0x99]);
        a.push_u16(0x1234);
        let mut b = Checksum::new();
        b.push(&[0x99, 0x12, 0x34]);
        assert_eq!(a.value(), b.value());
    }

    #[test]
    fn wide_word_path_matches_the_16_bit_definition() {
        // Cross-check every length 0..=64 (both sides of the 16-byte
        // chunking, odd tails included) against a naive 16-bit loop.
        for len in 0..=64usize {
            let data: Vec<u8> = (0..len as u8)
                .map(|i| i.wrapping_mul(37).wrapping_add(11))
                .collect();
            let mut naive: u32 = 0;
            let mut words = data.chunks_exact(2);
            for w in &mut words {
                naive += u32::from(u16::from_be_bytes([w[0], w[1]]));
            }
            if let [last] = words.remainder() {
                naive += u32::from(u16::from_be_bytes([*last, 0]));
            }
            let mut folded = naive;
            while folded >> 16 != 0 {
                folded = (folded & 0xffff) + (folded >> 16);
            }
            assert_eq!(checksum(&data), !(folded as u16), "len {len}");
        }
    }

    #[test]
    fn push_u16_equivalent_to_two_bytes() {
        let mut a = Checksum::new();
        a.push_u16(0x1234);
        let mut b = Checksum::new();
        b.push(&[0x12, 0x34]);
        assert_eq!(a.value(), b.value());
    }

    #[test]
    fn push_addr_equivalent_to_octets() {
        let addr = Ipv4Addr::new(130, 215, 36, 1);
        let mut a = Checksum::new();
        a.push_addr(addr);
        let mut b = Checksum::new();
        b.push(&addr.octets());
        assert_eq!(a.value(), b.value());
    }
}
