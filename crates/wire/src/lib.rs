//! # turb-wire — wire formats for the turbulence workspace
//!
//! Owned, validated representations of the packet formats the paper's
//! measurement pipeline observed on the wire in 2002, together with the
//! IPv4 fragmentation and reassembly machinery that produces the
//! MediaPlayer fragment trains of Figures 4 and 5:
//!
//! * [`EthernetFrame`] — Ethernet II framing (the sniffer's vantage
//!   point; a full frame carrying an MTU-sized IP packet is the
//!   paper's repeatedly-observed 1514 bytes).
//! * [`Ipv4Packet`] — IPv4 header with internet checksum, identification,
//!   DF/MF flags and 13-bit fragment offset.
//! * [`UdpDatagram`] — UDP with the IPv4 pseudo-header checksum.
//! * [`PacketView`] — zero-copy lazy header view over an encoded
//!   packet sitting in a shared buffer (the capture read path).
//! * [`icmp`] — echo request/reply and time-exceeded, enough to
//!   implement `ping` and `tracert`.
//! * [`frag`] — RFC 791 style fragmentation ([`frag::fragment`]) and a
//!   hole-tracking [`frag::Reassembler`].
//! * [`media`] — the small application-layer media header
//!   (player id, sequence number, frame number, media timestamp) that
//!   the tracker tools read back out of received payloads.
//!
//! Everything here is sans-IO and deterministic: structs encode to
//! `bytes::Bytes` and decode from `&[u8]`, and never touch a socket.

pub mod checksum;
pub mod error;
pub mod ethernet;
pub mod frag;
pub mod icmp;
pub mod ipv4;
pub mod media;
pub mod tcp;
pub mod udp;
pub mod view;

pub use error::WireError;
pub use ethernet::{EtherType, EthernetFrame, MacAddr, ETHERNET_HEADER_LEN};
pub use frag::{fragment, Reassembler};
pub use ipv4::{IpProtocol, Ipv4Packet, SessionTag, IPV4_HEADER_LEN};
pub use tcp::{TcpFlags, TcpSegment, TCP_HEADER_LEN};
pub use udp::{UdpDatagram, UDP_HEADER_LEN};
pub use view::PacketView;

/// The default Ethernet MTU, and the default MTU of the Windows 2000
/// stack the paper's client ran on (Microsoft KB Q140375, cited in the
/// paper): 1500 bytes of IP packet per frame.
pub const DEFAULT_MTU: usize = 1500;

/// Maximum Ethernet frame length at the sniffer for [`DEFAULT_MTU`]:
/// the `1514` bytes the paper reports for every non-final MediaPlayer
/// fragment ("All the packets in one group except the last IP fragment
/// have the same size, which is 1514 bytes").
pub const MAX_FRAME_LEN: usize = DEFAULT_MTU + ETHERNET_HEADER_LEN;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_constants_match_the_paper() {
        assert_eq!(DEFAULT_MTU, 1500);
        assert_eq!(MAX_FRAME_LEN, 1514);
    }
}
