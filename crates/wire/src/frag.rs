//! IPv4 fragmentation and reassembly (RFC 791 semantics).
//!
//! This is the mechanism behind the paper's Figures 4 and 5: the
//! MediaPlayer server hands the OS application-layer frames larger than
//! the path MTU, the sending stack fragments them, and the capture sees
//! "groups of packets … one UDP packet and the remaining packets are IP
//! fragments", every non-final fragment occupying a full 1514-byte
//! Ethernet frame. Loss of any one fragment discards the whole datagram
//! on reassembly — the goodput hazard §3.C discusses via \[FF99\].

use crate::error::WireError;
use crate::ipv4::{Ipv4Packet, IPV4_HEADER_LEN};
use bytes::{Bytes, BytesMut};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Split `packet` into MTU-sized fragments.
///
/// Returns the packet unchanged (as a single element) when it already
/// fits. Respects the DF flag. Fragment payload sizes are the largest
/// multiple of 8 that fits in `mtu - 20` bytes, except for the final
/// fragment — reproducing the "all 1514 bytes except the last" pattern.
///
/// Fragmenting an existing fragment is supported (offsets accumulate and
/// the final piece inherits the original's MF flag), as a real router
/// would.
pub fn fragment(packet: Ipv4Packet, mtu: usize) -> Result<Vec<Ipv4Packet>, WireError> {
    if mtu < IPV4_HEADER_LEN + 8 {
        return Err(WireError::Malformed {
            what: "fragment",
            field: "mtu",
        });
    }
    if packet.total_len() <= mtu {
        return Ok(vec![packet]);
    }
    if packet.dont_fragment {
        return Err(WireError::Malformed {
            what: "fragment",
            field: "dont_fragment",
        });
    }
    let chunk = ((mtu - IPV4_HEADER_LEN) / 8) * 8;
    let payload = packet.payload.clone();
    let mut fragments = Vec::with_capacity(payload.len().div_ceil(chunk));
    let mut offset = 0usize;
    while offset < payload.len() {
        let end = usize::min(offset + chunk, payload.len());
        let last = end == payload.len();
        let mut frag = packet.clone();
        frag.payload = payload.slice(offset..end);
        // 32-bit sum: a hand-built packet can carry an offset the
        // 13-bit field could never encode, and the add must not wrap.
        let frag_offset = u32::from(packet.fragment_offset) + (offset / 8) as u32;
        if frag_offset > 0x1fff {
            return Err(WireError::Malformed {
                what: "fragment",
                field: "fragment_offset",
            });
        }
        frag.fragment_offset = frag_offset as u16;
        frag.more_fragments = if last { packet.more_fragments } else { true };
        fragments.push(frag);
        offset = end;
    }
    Ok(fragments)
}

/// A partially reassembled datagram.
///
/// Pieces are kept sorted by offset and pairwise disjoint: overlap is
/// resolved at insertion (first arrival wins per byte, BSD-style), so
/// assembly is independent of arrival order by construction.
#[derive(Debug)]
struct Partial {
    /// Accepted (offset_bytes, payload) pieces, sorted and disjoint.
    pieces: Vec<(usize, Bytes)>,
    /// Total payload length, known once the final fragment arrives.
    total_len: Option<usize>,
    /// Header template from the first fragment seen.
    template: Ipv4Packet,
    /// Timestamp (caller's clock) of the first fragment.
    first_seen: u64,
}

impl Partial {
    /// Insert the sub-ranges of `[offset, offset + payload.len())` not
    /// already covered by an earlier fragment. Returns true when any
    /// byte of the new fragment overlapped existing coverage.
    fn insert_first_arrival_wins(&mut self, offset: usize, payload: Bytes) -> bool {
        let end = offset + payload.len();
        if end == offset {
            return false; // empty fragment carries no bytes
        }
        // Walk existing pieces (sorted, disjoint) across the new range,
        // collecting the uncovered gaps.
        let mut fresh: Vec<(usize, Bytes)> = Vec::new();
        let mut overlapped = false;
        let mut cursor = offset;
        for (off, piece) in &self.pieces {
            let (off, piece_end) = (*off, off + piece.len());
            if piece_end <= offset {
                continue;
            }
            if off >= end {
                break;
            }
            overlapped = true; // the piece intersects [offset, end)
            if off > cursor {
                fresh.push((cursor, payload.slice(cursor - offset..off - offset)));
            }
            cursor = cursor.max(piece_end);
            if cursor >= end {
                break;
            }
        }
        if cursor < end {
            fresh.push((cursor, payload.slice(cursor - offset..end - offset)));
        }
        self.pieces.extend(fresh);
        self.pieces.sort_unstable_by_key(|(off, _)| *off);
        overlapped
    }

    fn is_complete(&self) -> bool {
        let Some(total) = self.total_len else {
            return false;
        };
        // Pieces are sorted and disjoint, so a single sweep suffices.
        let mut covered = 0usize;
        for (start, piece) in &self.pieces {
            if *start > covered {
                return false; // hole
            }
            covered = start + piece.len();
        }
        covered >= total
    }

    fn assemble(&self) -> Bytes {
        let total = self.total_len.expect("assemble called before complete");
        let mut buf = BytesMut::from(&vec![0u8; total][..]);
        for (off, piece) in &self.pieces {
            // Invariant: accepted pieces never extend past total_len
            // (fragments that would are rejected as invalid on push).
            buf[*off..off + piece.len()].copy_from_slice(piece);
        }
        buf.freeze()
    }

    /// Highest byte covered by any accepted piece.
    fn covered_end(&self) -> usize {
        self.pieces
            .iter()
            .map(|(off, b)| off + b.len())
            .max()
            .unwrap_or(0)
    }
}

/// Counters describing a [`Reassembler`]'s life so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReassemblyStats {
    /// Fragments accepted.
    pub fragments_received: u64,
    /// Whole (unfragmented) packets passed straight through.
    pub passthrough: u64,
    /// Datagrams successfully reassembled.
    pub reassembled: u64,
    /// Datagrams abandoned because their timer expired with holes —
    /// the wasted-bandwidth case behind fragmentation-based congestion
    /// collapse.
    pub timed_out: u64,
    /// Duplicate or overlapping fragments: any accepted fragment whose
    /// byte range intersected data that had already arrived. Overlap is
    /// resolved first-arrival-wins per byte (BSD-style), so reassembly
    /// never depends on arrival order.
    pub duplicates: u64,
    /// Fragments rejected as malformed: extending past the datagram's
    /// declared total length, or a final fragment that contradicts an
    /// earlier final / already-received data beyond its end.
    pub invalid: u64,
}

/// Reassembles fragmented IPv4 datagrams keyed by
/// (src, dst, protocol, identification), with a per-datagram timeout.
#[derive(Debug)]
pub struct Reassembler {
    partials: HashMap<(Ipv4Addr, Ipv4Addr, u8, u16), Partial>,
    timeout: u64,
    stats: ReassemblyStats,
}

impl Reassembler {
    /// Create a reassembler whose partial datagrams expire `timeout`
    /// clock units after their first fragment (classic stacks use
    /// 15–60 s; the simulator passes nanoseconds).
    pub fn new(timeout: u64) -> Self {
        Reassembler {
            partials: HashMap::new(),
            timeout,
            stats: ReassemblyStats::default(),
        }
    }

    /// Offer a packet at time `now`. Returns a complete datagram when
    /// `packet` is unfragmented or completes a pending reassembly.
    pub fn push(&mut self, packet: Ipv4Packet, now: u64) -> Option<Ipv4Packet> {
        if !packet.is_fragment() {
            self.stats.passthrough += 1;
            return Some(packet);
        }
        self.stats.fragments_received += 1;
        let key = packet.datagram_key();
        let offset = packet.fragment_offset_bytes();
        let end = offset + packet.payload.len();
        let partial = self.partials.entry(key).or_insert_with(|| Partial {
            pieces: Vec::new(),
            total_len: None,
            template: packet.clone(),
            first_seen: now,
        });
        // Fail closed on fragments that contradict the datagram's
        // declared length instead of silently clamping at assembly.
        match partial.total_len {
            // Beyond the end set by the final fragment, or a second
            // final fragment declaring a different end.
            Some(total) if end > total || (!packet.more_fragments && end != total) => {
                self.stats.invalid += 1;
                return None;
            }
            Some(_) => {}
            None if !packet.more_fragments => {
                // A final fragment whose end already-received data
                // extends past is equally contradictory.
                if partial.covered_end() > end {
                    self.stats.invalid += 1;
                    return None;
                }
                partial.total_len = Some(end);
            }
            None => {}
        }
        if offset == 0 {
            // Prefer the first fragment's header as the template so the
            // reassembled datagram carries its TTL/TOS.
            partial.template = packet.clone();
        }
        if partial.insert_first_arrival_wins(offset, packet.payload) {
            self.stats.duplicates += 1;
        }
        if partial.is_complete() {
            let partial = self.partials.remove(&key).expect("present");
            let payload = partial.assemble();
            let mut whole = partial.template;
            whole.payload = payload;
            whole.more_fragments = false;
            whole.fragment_offset = 0;
            self.stats.reassembled += 1;
            return Some(whole);
        }
        None
    }

    /// Drop partial datagrams older than the timeout. Returns how many
    /// were abandoned.
    pub fn expire(&mut self, now: u64) -> usize {
        self.expire_with(now, |_| {})
    }

    /// [`Reassembler::expire`], invoking `on_expired` with each
    /// abandoned datagram's header template. Expired partials are
    /// visited in a deterministic order (first-seen time, then the
    /// datagram key) regardless of `HashMap` iteration order, so
    /// same-seed runs observe identical callback sequences.
    pub fn expire_with(&mut self, now: u64, mut on_expired: impl FnMut(&Ipv4Packet)) -> usize {
        let timeout = self.timeout;
        let mut expired: Vec<_> = self
            .partials
            .iter()
            .filter(|(_, p)| now.saturating_sub(p.first_seen) >= timeout)
            .map(|(key, p)| (p.first_seen, *key))
            .collect();
        expired.sort_unstable();
        for (_, key) in &expired {
            let partial = self.partials.remove(key).expect("expired key present");
            on_expired(&partial.template);
        }
        self.stats.timed_out += expired.len() as u64;
        expired.len()
    }

    /// Number of datagrams currently awaiting more fragments.
    pub fn pending(&self) -> usize {
        self.partials.len()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> ReassemblyStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ipv4::IpProtocol;

    fn packet(payload_len: usize) -> Ipv4Packet {
        let payload: Vec<u8> = (0..payload_len).map(|i| (i % 251) as u8).collect();
        Ipv4Packet::new(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            IpProtocol::Udp,
            42,
            Bytes::from(payload),
        )
    }

    #[test]
    fn small_packet_passes_through() {
        let p = packet(100);
        let frags = fragment(p.clone(), 1500).unwrap();
        assert_eq!(frags, vec![p]);
    }

    #[test]
    fn fragment_sizes_match_the_paper() {
        // A ~3840-byte application frame at ≈300 Kbps over 100 ms
        // (paper §3.C): 3 packets, the first two full-MTU.
        let p = packet(3840 + 8);
        let frags = fragment(p, 1500).unwrap();
        assert_eq!(frags.len(), 3);
        assert_eq!(frags[0].total_len(), 1500); // 1514 on Ethernet
        assert_eq!(frags[1].total_len(), 1500);
        assert!(frags[2].total_len() < 1500);
        assert!(frags[0].is_first_fragment());
        assert!(frags[1].is_fragment() && !frags[1].is_first_fragment());
        assert!(!frags[2].more_fragments);
        // Offsets are contiguous in 8-byte units.
        assert_eq!(frags[0].fragment_offset, 0);
        assert_eq!(frags[1].fragment_offset_bytes(), 1480);
        assert_eq!(frags[2].fragment_offset_bytes(), 2960);
    }

    #[test]
    fn df_flag_refuses_fragmentation() {
        let mut p = packet(3000);
        p.dont_fragment = true;
        assert!(matches!(
            fragment(p, 1500).unwrap_err(),
            WireError::Malformed {
                field: "dont_fragment",
                ..
            }
        ));
    }

    #[test]
    fn tiny_mtu_is_rejected() {
        assert!(fragment(packet(100), 20).is_err());
    }

    #[test]
    fn reassembly_roundtrip_in_order() {
        let p = packet(5000);
        let frags = fragment(p.clone(), 1500).unwrap();
        let mut r = Reassembler::new(u64::MAX);
        let mut out = None;
        for f in frags {
            out = r.push(f, 0);
        }
        let whole = out.expect("reassembly completes on last fragment");
        assert_eq!(whole.payload, p.payload);
        assert!(!whole.is_fragment());
        assert_eq!(r.stats().reassembled, 1);
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn reassembly_roundtrip_out_of_order() {
        let p = packet(6000);
        let mut frags = fragment(p.clone(), 1500).unwrap();
        frags.reverse();
        let mut r = Reassembler::new(u64::MAX);
        let mut out = None;
        for f in frags {
            out = out.or(r.push(f, 0));
        }
        assert_eq!(out.unwrap().payload, p.payload);
    }

    #[test]
    fn missing_fragment_never_completes_and_times_out() {
        let p = packet(5000);
        let mut frags = fragment(p, 1500).unwrap();
        frags.remove(1); // lose a middle fragment
        let mut r = Reassembler::new(1000);
        for f in frags {
            assert!(r.push(f, 0).is_none());
        }
        assert_eq!(r.pending(), 1);
        assert_eq!(r.expire(999), 0); // not yet
        assert_eq!(r.expire(1000), 1);
        assert_eq!(r.stats().timed_out, 1);
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn expire_with_reports_templates_in_deterministic_order() {
        let mut r = Reassembler::new(1000);
        // Three incomplete datagrams, first seen at 30 / 10 / 20.
        for (ident, seen) in [(1u16, 30u64), (2, 10), (3, 20)] {
            let mut p = packet(2000);
            p.identification = ident;
            p.lineage = Some(u64::from(ident));
            let frags = fragment(p, 1500).unwrap();
            assert!(r.push(frags[0].clone(), seen).is_none());
        }
        let mut seen: Vec<(u64, u16)> = Vec::new();
        let n = r.expire_with(2000, |template| {
            seen.push((template.lineage.unwrap(), template.identification));
        });
        assert_eq!(n, 3);
        // Ordered by first-seen time, not hash order.
        assert_eq!(seen, vec![(2, 2), (3, 3), (1, 1)]);
        assert_eq!(r.stats().timed_out, 3);
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn reassembled_datagram_inherits_lineage() {
        let mut p = packet(3000);
        p.lineage = Some(77);
        let frags = fragment(p, 1500).unwrap();
        assert!(frags.iter().all(|f| f.lineage == Some(77)));
        let mut r = Reassembler::new(u64::MAX);
        let mut out = None;
        for f in frags {
            out = out.or(r.push(f, 0));
        }
        assert_eq!(out.unwrap().lineage, Some(77));
    }

    #[test]
    fn duplicate_fragments_are_ignored() {
        let p = packet(2000);
        let frags = fragment(p.clone(), 1500).unwrap();
        let mut r = Reassembler::new(u64::MAX);
        assert!(r.push(frags[0].clone(), 0).is_none());
        assert!(r.push(frags[0].clone(), 0).is_none());
        let whole = r.push(frags[1].clone(), 0).unwrap();
        assert_eq!(whole.payload, p.payload);
        assert_eq!(r.stats().duplicates, 1);
    }

    /// Build a raw fragment by hand: payload bytes at a byte offset.
    fn raw_frag(offset_bytes: usize, payload: Vec<u8>, more: bool) -> Ipv4Packet {
        let mut p = packet(0);
        p.payload = Bytes::from(payload);
        p.fragment_offset = (offset_bytes / 8) as u16;
        p.more_fragments = more;
        p
    }

    #[test]
    fn overlapping_fragments_resolve_first_arrival_wins() {
        // Regression: overlap used to be accepted and copied in arrival
        // order, so the reassembled payload depended on which fragment
        // came first. First arrival must win per byte, both orders.
        let a = raw_frag(0, vec![0xaa; 16], true); // [0, 16) of 0xaa
        let b = raw_frag(8, vec![0xbb; 16], false); // [8, 24) of 0xbb
        let mut expected = vec![0xaa; 16];
        expected.extend_from_slice(&[0xbb; 8]); // a's bytes win on [8, 16)
        let mut r = Reassembler::new(u64::MAX);
        assert!(r.push(a.clone(), 0).is_none());
        let whole = r.push(b.clone(), 0).expect("complete");
        assert_eq!(whole.payload.as_ref(), &expected[..]);
        assert_eq!(r.stats().duplicates, 1);

        // Reversed arrival: b's bytes win on the overlap instead.
        let mut expected_rev = vec![0xaa; 8];
        expected_rev.extend_from_slice(&[0xbb; 16]);
        let mut r = Reassembler::new(u64::MAX);
        assert!(r.push(b, 0).is_none());
        let whole = r.push(a, 0).expect("complete");
        assert_eq!(whole.payload.as_ref(), &expected_rev[..]);
        assert_eq!(r.stats().duplicates, 1);
    }

    #[test]
    fn fragment_beyond_declared_total_is_rejected() {
        // Regression: a fragment arriving after the final fragment and
        // extending past the declared total length used to be silently
        // clamped (and could wedge the partial forever). It must be
        // rejected and counted.
        let mut r = Reassembler::new(u64::MAX);
        assert!(r.push(raw_frag(16, vec![2; 8], false), 0).is_none()); // total 24
                                                                       // Entirely beyond the declared end.
        assert!(r.push(raw_frag(32, vec![9; 8], true), 0).is_none());
        // Straddling the declared end.
        assert!(r.push(raw_frag(16, vec![9; 16], true), 0).is_none());
        assert_eq!(r.stats().invalid, 2);
        // The datagram still completes from the valid fragments alone.
        let whole = r
            .push(raw_frag(0, vec![1; 16], true), 0)
            .expect("completes");
        assert_eq!(whole.payload.len(), 24);
        assert_eq!(&whole.payload[..16], &[1; 16][..]);
        assert_eq!(&whole.payload[16..], &[2; 8][..]);
        assert_eq!(r.stats().duplicates, 0);
    }

    #[test]
    fn conflicting_final_fragment_does_not_panic_or_corrupt() {
        // Regression: pieces [0,1000) + [1000,2000) followed by a final
        // fragment declaring total 600 used to panic in assemble
        // (buf[1000..600]). The contradictory final must be rejected.
        let mut r = Reassembler::new(u64::MAX);
        assert!(r.push(raw_frag(0, vec![1; 1000], true), 0).is_none());
        assert!(r.push(raw_frag(1000, vec![2; 1000], true), 0).is_none());
        assert!(r.push(raw_frag(592, vec![3; 8], false), 0).is_none());
        assert_eq!(r.stats().invalid, 1);
        // The datagram can still complete with a consistent final.
        let whole = r
            .push(raw_frag(2000, vec![4; 8], false), 0)
            .expect("consistent final completes");
        assert_eq!(whole.payload.len(), 2008);
        assert_eq!(r.stats().reassembled, 1);
    }

    #[test]
    fn second_final_with_different_length_is_rejected() {
        let mut r = Reassembler::new(u64::MAX);
        assert!(r.push(raw_frag(8, vec![2; 8], false), 0).is_none()); // total 16
        assert!(r.push(raw_frag(8, vec![2; 16], false), 0).is_none()); // claims 24
        assert_eq!(r.stats().invalid, 1);
        let whole = r.push(raw_frag(0, vec![1; 8], true), 0).expect("completes");
        assert_eq!(whole.payload.len(), 16);
    }

    #[test]
    fn interleaved_datagrams_reassemble_independently() {
        let a = packet(2000);
        let mut b = packet(2000);
        b.identification = 43;
        let fa = fragment(a.clone(), 1500).unwrap();
        let fb = fragment(b.clone(), 1500).unwrap();
        let mut r = Reassembler::new(u64::MAX);
        assert!(r.push(fa[0].clone(), 0).is_none());
        assert!(r.push(fb[0].clone(), 0).is_none());
        let wa = r.push(fa[1].clone(), 0).unwrap();
        let wb = r.push(fb[1].clone(), 0).unwrap();
        assert_eq!(wa.identification, 42);
        assert_eq!(wb.identification, 43);
        assert_eq!(wa.payload, a.payload);
        assert_eq!(wb.payload, b.payload);
    }

    #[test]
    fn refragmenting_a_fragment_accumulates_offsets() {
        let p = packet(4000);
        let frags = fragment(p, 1500).unwrap();
        // Push the middle fragment through a smaller-MTU hop.
        let sub = fragment(frags[1].clone(), 700).unwrap();
        assert!(sub.len() > 1);
        assert_eq!(sub[0].fragment_offset, frags[1].fragment_offset);
        // All sub-fragments of a non-final fragment keep MF set.
        assert!(sub.iter().all(|f| f.more_fragments));
    }

    #[test]
    fn encode_decode_of_fragments_roundtrips() {
        let p = packet(4000);
        for f in fragment(p, 1500).unwrap() {
            let decoded = Ipv4Packet::decode(&f.encode().unwrap()).unwrap();
            assert_eq!(decoded, f);
        }
    }
}
