//! IPv4 packets: header encoding/decoding, checksum, fragment fields.

use crate::checksum::Checksum;
use crate::error::WireError;
use bytes::{BufMut, Bytes, BytesMut};
use std::net::Ipv4Addr;

/// Length of an IPv4 header without options. This crate neither emits
/// nor accepts options (the 2002 traces contained none).
pub const IPV4_HEADER_LEN: usize = 20;

/// Largest total length an IPv4 packet can describe.
pub const IPV4_MAX_TOTAL_LEN: usize = 65535;

/// IP protocol numbers this workspace cares about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IpProtocol {
    /// ICMP (1).
    Icmp,
    /// TCP (6) — recognised so captures can classify cross traffic.
    Tcp,
    /// UDP (17) — the transport both players were forced to use.
    Udp,
    /// Any other protocol number.
    Other(u8),
}

impl From<u8> for IpProtocol {
    fn from(v: u8) -> Self {
        match v {
            1 => IpProtocol::Icmp,
            6 => IpProtocol::Tcp,
            17 => IpProtocol::Udp,
            other => IpProtocol::Other(other),
        }
    }
}

impl IpProtocol {
    /// The on-wire protocol number.
    pub fn as_u8(self) -> u8 {
        match self {
            IpProtocol::Icmp => 1,
            IpProtocol::Tcp => 6,
            IpProtocol::Udp => 17,
            IpProtocol::Other(v) => v,
        }
    }
}

/// A decoded IPv4 packet (header without options + payload).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ipv4Packet {
    /// Differentiated services / TOS byte.
    pub tos: u8,
    /// Identification, shared by all fragments of one datagram.
    pub identification: u16,
    /// Don't-fragment flag.
    pub dont_fragment: bool,
    /// More-fragments flag: set on every fragment except the last.
    pub more_fragments: bool,
    /// Fragment offset in 8-byte units (13 bits on the wire).
    pub fragment_offset: u16,
    /// Time to live.
    pub ttl: u8,
    /// Payload protocol.
    pub protocol: IpProtocol,
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Payload bytes (the L4 segment or a fragment thereof).
    pub payload: Bytes,
    /// Lineage span id (host-side only, never on the wire): stamped by
    /// the simulator when lifecycle tracing is enabled, `None`
    /// otherwise. Fragments inherit their parent datagram's span and
    /// the reassembled datagram inherits it back from its template.
    pub lineage: Option<u64>,
    /// Session tag (host-side only, never on the wire): which observed
    /// session this datagram belongs to and when it left the sending
    /// application, stamped by the simulator when session rollups are
    /// enabled. Propagates across fragmentation/reassembly exactly
    /// like `lineage`.
    pub session: Option<SessionTag>,
}

/// Host-side session annotation carried by [`Ipv4Packet::session`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionTag {
    /// Dense session id (the session recorder's table index).
    pub id: u32,
    /// Sim time the datagram left the sending application, for
    /// end-to-end latency at delivery.
    pub born_ns: u64,
}

impl Ipv4Packet {
    /// Build an unfragmented packet with common defaults
    /// (TTL 128, matching the Windows 2000 sender the paper used).
    pub fn new(
        src: Ipv4Addr,
        dst: Ipv4Addr,
        protocol: IpProtocol,
        identification: u16,
        payload: Bytes,
    ) -> Self {
        Ipv4Packet {
            tos: 0,
            identification,
            dont_fragment: false,
            more_fragments: false,
            fragment_offset: 0,
            ttl: 128,
            protocol,
            src,
            dst,
            payload,
            lineage: None,
            session: None,
        }
    }

    /// Whether this packet is a fragment of a larger datagram
    /// (Ethereal's "Fragmented IP protocol" classification matches
    /// every packet with MF set or a non-zero offset).
    pub fn is_fragment(&self) -> bool {
        self.more_fragments || self.fragment_offset != 0
    }

    /// Whether this is the *first* fragment of a fragmented datagram.
    pub fn is_first_fragment(&self) -> bool {
        self.more_fragments && self.fragment_offset == 0
    }

    /// Total on-wire length (header + payload).
    pub fn total_len(&self) -> usize {
        IPV4_HEADER_LEN + self.payload.len()
    }

    /// Fragment offset in bytes.
    pub fn fragment_offset_bytes(&self) -> usize {
        usize::from(self.fragment_offset) * 8
    }

    /// Key identifying the datagram this packet (fragment) belongs to.
    pub fn datagram_key(&self) -> (Ipv4Addr, Ipv4Addr, u8, u16) {
        (
            self.src,
            self.dst,
            self.protocol.as_u8(),
            self.identification,
        )
    }

    /// Serialise, computing the header checksum.
    ///
    /// Fails with [`WireError::Oversize`] if the payload would push the
    /// total length beyond 65535 bytes, and with
    /// [`WireError::Malformed`] if the fragment offset does not fit in
    /// 13 bits.
    pub fn encode(&self) -> Result<Bytes, WireError> {
        if self.total_len() > IPV4_MAX_TOTAL_LEN {
            return Err(WireError::Oversize {
                what: "ipv4",
                limit: IPV4_MAX_TOTAL_LEN,
                got: self.total_len(),
            });
        }
        if self.fragment_offset > 0x1fff {
            return Err(WireError::Malformed {
                what: "ipv4",
                field: "fragment_offset",
            });
        }
        let mut header = [0u8; IPV4_HEADER_LEN];
        header[0] = 0x45; // version 4, IHL 5
        header[1] = self.tos;
        header[2..4].copy_from_slice(&(self.total_len() as u16).to_be_bytes());
        header[4..6].copy_from_slice(&self.identification.to_be_bytes());
        let mut flags_frag = self.fragment_offset & 0x1fff;
        if self.dont_fragment {
            flags_frag |= 0x4000;
        }
        if self.more_fragments {
            flags_frag |= 0x2000;
        }
        header[6..8].copy_from_slice(&flags_frag.to_be_bytes());
        header[8] = self.ttl;
        header[9] = self.protocol.as_u8();
        // header[10..12] = checksum, zero while summing
        header[12..16].copy_from_slice(&self.src.octets());
        header[16..20].copy_from_slice(&self.dst.octets());
        let mut csum = Checksum::new();
        csum.push(&header);
        header[10..12].copy_from_slice(&csum.value().to_be_bytes());

        let mut buf = BytesMut::with_capacity(self.total_len());
        buf.put_slice(&header);
        buf.put_slice(&self.payload);
        Ok(buf.freeze())
    }

    /// Parse and verify a packet from bytes.
    pub fn decode(data: &[u8]) -> Result<Self, WireError> {
        let total_len = Self::validate_header(data)?;
        Ok(Self::from_header(
            data,
            Bytes::copy_from_slice(&data[IPV4_HEADER_LEN..total_len]),
        ))
    }

    /// Zero-copy [`Ipv4Packet::decode`]: the payload is a refcounted
    /// slice of `data`, not a fresh allocation. Used by the capture
    /// read path, where the whole frame already sits in one buffer.
    pub fn decode_shared(data: &Bytes) -> Result<Self, WireError> {
        let total_len = Self::validate_header(data)?;
        Ok(Self::from_header(
            data,
            data.slice(IPV4_HEADER_LEN..total_len),
        ))
    }

    /// Shared header validation (bounds, version, IHL, stored length,
    /// checksum). Returns the on-wire total length. Also used by
    /// [`crate::view::PacketView`] at construction.
    pub(crate) fn validate_header(data: &[u8]) -> Result<usize, WireError> {
        if data.len() < IPV4_HEADER_LEN {
            return Err(WireError::Truncated {
                what: "ipv4",
                need: IPV4_HEADER_LEN,
                got: data.len(),
            });
        }
        if data[0] >> 4 != 4 {
            return Err(WireError::Malformed {
                what: "ipv4",
                field: "version",
            });
        }
        let ihl = usize::from(data[0] & 0x0f) * 4;
        if ihl != IPV4_HEADER_LEN {
            return Err(WireError::Malformed {
                what: "ipv4",
                field: "ihl",
            });
        }
        let total_len = usize::from(u16::from_be_bytes([data[2], data[3]]));
        if total_len < IPV4_HEADER_LEN || total_len > data.len() {
            return Err(WireError::Malformed {
                what: "ipv4",
                field: "total_length",
            });
        }
        if !crate::checksum::verify(&data[..IPV4_HEADER_LEN]) {
            return Err(WireError::BadChecksum { what: "ipv4" });
        }
        Ok(total_len)
    }

    fn from_header(data: &[u8], payload: Bytes) -> Self {
        let flags_frag = u16::from_be_bytes([data[6], data[7]]);
        Ipv4Packet {
            tos: data[1],
            identification: u16::from_be_bytes([data[4], data[5]]),
            dont_fragment: flags_frag & 0x4000 != 0,
            more_fragments: flags_frag & 0x2000 != 0,
            fragment_offset: flags_frag & 0x1fff,
            ttl: data[8],
            protocol: IpProtocol::from(data[9]),
            src: Ipv4Addr::new(data[12], data[13], data[14], data[15]),
            dst: Ipv4Addr::new(data[16], data[17], data[18], data[19]),
            payload,
            lineage: None,
            session: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ipv4Packet {
        Ipv4Packet::new(
            Ipv4Addr::new(130, 215, 36, 1),
            Ipv4Addr::new(204, 71, 200, 33),
            IpProtocol::Udp,
            0xbeef,
            Bytes::from_static(b"payload bytes"),
        )
    }

    #[test]
    fn roundtrip() {
        let p = sample();
        let encoded = p.encode().unwrap();
        assert_eq!(encoded.len(), p.total_len());
        let q = Ipv4Packet::decode(&encoded).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn fragment_fields_roundtrip() {
        let mut p = sample();
        p.more_fragments = true;
        p.fragment_offset = 185; // 1480 bytes
        let q = Ipv4Packet::decode(&p.encode().unwrap()).unwrap();
        assert!(q.is_fragment());
        assert!(!q.is_first_fragment());
        assert_eq!(q.fragment_offset_bytes(), 1480);
    }

    #[test]
    fn first_fragment_classification() {
        let mut p = sample();
        p.more_fragments = true;
        assert!(p.is_fragment());
        assert!(p.is_first_fragment());
        p.more_fragments = false;
        assert!(!p.is_fragment());
    }

    #[test]
    fn corrupted_header_fails_checksum() {
        let p = sample();
        let mut encoded = p.encode().unwrap().to_vec();
        encoded[8] ^= 0xff; // mangle TTL
        assert_eq!(
            Ipv4Packet::decode(&encoded).unwrap_err(),
            WireError::BadChecksum { what: "ipv4" }
        );
    }

    #[test]
    fn rejects_wrong_version() {
        let p = sample();
        let mut encoded = p.encode().unwrap().to_vec();
        encoded[0] = 0x65; // version 6
        assert!(matches!(
            Ipv4Packet::decode(&encoded).unwrap_err(),
            WireError::Malformed {
                field: "version",
                ..
            }
        ));
    }

    #[test]
    fn rejects_inconsistent_total_length() {
        let p = sample();
        let encoded = p.encode().unwrap();
        // Truncate below the declared total length.
        assert!(matches!(
            Ipv4Packet::decode(&encoded[..encoded.len() - 1]).unwrap_err(),
            WireError::Malformed {
                field: "total_length",
                ..
            }
        ));
    }

    #[test]
    fn rejects_oversize_payload() {
        let mut p = sample();
        p.payload = Bytes::from(vec![0u8; IPV4_MAX_TOTAL_LEN]);
        assert!(matches!(
            p.encode().unwrap_err(),
            WireError::Oversize { what: "ipv4", .. }
        ));
    }

    #[test]
    fn rejects_offset_beyond_13_bits() {
        let mut p = sample();
        p.fragment_offset = 0x2000;
        assert!(matches!(
            p.encode().unwrap_err(),
            WireError::Malformed {
                field: "fragment_offset",
                ..
            }
        ));
    }

    #[test]
    fn trailing_link_padding_is_ignored() {
        // A frame may be longer than the IP total length (e.g. minimum
        // Ethernet frame padding); decode must honour total_length.
        let p = sample();
        let mut encoded = p.encode().unwrap().to_vec();
        encoded.extend_from_slice(&[0u8; 9]);
        let q = Ipv4Packet::decode(&encoded).unwrap();
        assert_eq!(q.payload, p.payload);
    }

    #[test]
    fn protocol_numbers_roundtrip() {
        for v in [1u8, 6, 17, 89] {
            assert_eq!(IpProtocol::from(v).as_u8(), v);
        }
    }

    #[test]
    fn datagram_key_groups_fragments() {
        let mut a = sample();
        a.more_fragments = true;
        let mut b = sample();
        b.fragment_offset = 185;
        assert_eq!(a.datagram_key(), b.datagram_key());
        b.identification = 1;
        assert_ne!(a.datagram_key(), b.datagram_key());
    }
}
