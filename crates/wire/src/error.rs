//! Error type shared by all decoders in this crate.

use core::fmt;

/// Why a byte buffer could not be decoded as (part of) a packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer is shorter than the minimum for this format.
    ///
    /// Carries the format name, the required length, and the length we got.
    Truncated {
        /// Human-readable name of the layer being decoded.
        what: &'static str,
        /// Minimum number of bytes required.
        need: usize,
        /// Number of bytes actually available.
        got: usize,
    },
    /// A header field holds a value the decoder cannot accept
    /// (e.g. IPv4 version != 4, IHL < 5, total length inconsistent).
    Malformed {
        /// Human-readable name of the layer being decoded.
        what: &'static str,
        /// Description of the offending field.
        field: &'static str,
    },
    /// A checksum failed verification.
    BadChecksum {
        /// Human-readable name of the layer whose checksum failed.
        what: &'static str,
    },
    /// The payload is larger than the format can describe
    /// (e.g. an IPv4 packet longer than 65535 bytes).
    Oversize {
        /// Human-readable name of the layer being encoded.
        what: &'static str,
        /// The limit that was exceeded.
        limit: usize,
        /// The requested size.
        got: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { what, need, got } => {
                write!(f, "{what}: truncated, need {need} bytes, got {got}")
            }
            WireError::Malformed { what, field } => {
                write!(f, "{what}: malformed field {field}")
            }
            WireError::BadChecksum { what } => write!(f, "{what}: checksum mismatch"),
            WireError::Oversize { what, limit, got } => {
                write!(f, "{what}: size {got} exceeds limit {limit}")
            }
        }
    }
}

impl std::error::Error for WireError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = WireError::Truncated {
            what: "ipv4",
            need: 20,
            got: 7,
        };
        assert_eq!(e.to_string(), "ipv4: truncated, need 20 bytes, got 7");
        let e = WireError::BadChecksum { what: "udp" };
        assert_eq!(e.to_string(), "udp: checksum mismatch");
        let e = WireError::Malformed {
            what: "ipv4",
            field: "version",
        };
        assert_eq!(e.to_string(), "ipv4: malformed field version");
        let e = WireError::Oversize {
            what: "ipv4",
            limit: 65535,
            got: 70000,
        };
        assert_eq!(e.to_string(), "ipv4: size 70000 exceeds limit 65535");
    }
}
