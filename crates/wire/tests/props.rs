//! Property-based tests for wire formats and fragmentation invariants.

use bytes::Bytes;
use proptest::prelude::*;
use std::net::Ipv4Addr;
use turb_wire::frag::{fragment, Reassembler};
use turb_wire::icmp::IcmpMessage;
use turb_wire::ipv4::{IpProtocol, Ipv4Packet, IPV4_HEADER_LEN};
use turb_wire::media::{MediaHeader, PlayerId, MEDIA_HEADER_LEN};
use turb_wire::udp::UdpDatagram;
use turb_wire::{EthernetFrame, MacAddr};

fn arb_addr() -> impl Strategy<Value = Ipv4Addr> {
    any::<[u8; 4]>().prop_map(|o| Ipv4Addr::new(o[0], o[1], o[2], o[3]))
}

fn arb_payload(max: usize) -> impl Strategy<Value = Bytes> {
    proptest::collection::vec(any::<u8>(), 0..max).prop_map(Bytes::from)
}

fn arb_packet(max_payload: usize) -> impl Strategy<Value = Ipv4Packet> {
    (
        arb_addr(),
        arb_addr(),
        any::<u16>(),
        any::<u8>(),
        arb_payload(max_payload),
    )
        .prop_map(|(src, dst, ident, ttl, payload)| {
            let mut p = Ipv4Packet::new(src, dst, IpProtocol::Udp, ident, payload);
            p.ttl = ttl;
            p
        })
}

proptest! {
    #[test]
    fn ethernet_roundtrip(payload in arb_payload(2000), a: u32, b: u32) {
        let f = EthernetFrame::ipv4(MacAddr::local(a), MacAddr::local(b), payload);
        prop_assert_eq!(EthernetFrame::decode(&f.encode()).unwrap(), f);
    }

    #[test]
    fn ipv4_roundtrip(p in arb_packet(4000)) {
        let q = Ipv4Packet::decode(&p.encode().unwrap()).unwrap();
        prop_assert_eq!(p, q);
    }

    #[test]
    fn ipv4_decode_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..128)) {
        let _ = Ipv4Packet::decode(&data);
    }

    #[test]
    fn udp_roundtrip(src in arb_addr(), dst in arb_addr(), sp: u16, dp: u16,
                     payload in arb_payload(2000)) {
        let d = UdpDatagram::new(sp, dp, payload);
        let e = UdpDatagram::decode(&d.encode(src, dst).unwrap(), src, dst).unwrap();
        prop_assert_eq!(d, e);
    }

    #[test]
    fn icmp_echo_roundtrip(ident: u16, seq: u16, payload in arb_payload(256)) {
        let m = IcmpMessage::EchoRequest { ident, seq, payload };
        prop_assert_eq!(IcmpMessage::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn icmp_decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = IcmpMessage::decode(&data);
    }

    #[test]
    fn media_header_roundtrip(seq: u32, frame: u32, t: u32, buffering: bool,
                              padding in 0usize..2000) {
        let h = MediaHeader {
            player: if seq.is_multiple_of(2) { PlayerId::MediaPlayer } else { PlayerId::RealPlayer },
            sequence: seq,
            frame_number: frame,
            media_time_ms: t,
            buffering,
        };
        let bytes = h.encode_with_padding(padding);
        prop_assert_eq!(bytes.len(), MEDIA_HEADER_LEN + padding);
        prop_assert_eq!(MediaHeader::decode(&bytes).unwrap(), h);
    }

    /// Fragmentation invariants: fragments all fit the MTU, offsets are
    /// contiguous, payload bytes are preserved in order, only the last
    /// fragment clears MF.
    #[test]
    fn fragmentation_invariants(p in arb_packet(20_000),
                                mtu in (IPV4_HEADER_LEN + 8)..3000usize) {
        let total = p.payload.len();
        let frags = fragment(p.clone(), mtu).unwrap();
        prop_assert!(!frags.is_empty());
        let mut rebuilt = Vec::with_capacity(total);
        for (i, f) in frags.iter().enumerate() {
            prop_assert!(f.total_len() <= mtu.max(p.total_len().min(mtu)));
            if frags.len() > 1 {
                prop_assert!(f.total_len() <= mtu);
                prop_assert_eq!(f.more_fragments, i + 1 != frags.len());
                prop_assert_eq!(f.fragment_offset_bytes(), rebuilt.len());
            }
            rebuilt.extend_from_slice(&f.payload);
        }
        prop_assert_eq!(Bytes::from(rebuilt), p.payload);
    }

    /// Reassembly recovers the original payload under any fragment
    /// arrival order.
    #[test]
    fn reassembly_is_order_independent(p in arb_packet(20_000),
                                       mtu in 600usize..1600,
                                       seed: u64) {
        let frags = fragment(p.clone(), mtu).unwrap();
        // Deterministic shuffle from the seed (Fisher-Yates with an LCG).
        let mut order: Vec<usize> = (0..frags.len()).collect();
        let mut state = seed | 1;
        for i in (1..order.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            order.swap(i, j);
        }
        let mut r = Reassembler::new(u64::MAX);
        let mut out = None;
        for idx in order {
            if let Some(w) = r.push(frags[idx].clone(), 0) {
                prop_assert!(out.is_none(), "completed twice");
                out = Some(w);
            }
        }
        let whole = out.expect("all fragments delivered ⇒ complete");
        prop_assert_eq!(whole.payload, p.payload);
        prop_assert_eq!(r.pending(), 0);
    }

    /// Losing any single fragment of a multi-fragment datagram prevents
    /// reassembly — the goodput-collapse mechanism of §3.C.
    #[test]
    fn any_single_loss_kills_the_datagram(p in arb_packet(20_000), drop_idx: usize) {
        prop_assume!(p.payload.len() + IPV4_HEADER_LEN > 1500);
        let frags = fragment(p, 1500).unwrap();
        prop_assume!(frags.len() >= 2);
        let drop_idx = drop_idx % frags.len();
        let mut r = Reassembler::new(u64::MAX);
        for (i, f) in frags.iter().enumerate() {
            if i == drop_idx {
                continue;
            }
            prop_assert!(r.push(f.clone(), 0).is_none());
        }
        prop_assert_eq!(r.pending(), 1);
    }
}
