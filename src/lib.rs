//! Umbrella crate for the `turbulence` workspace: hosts the runnable
//! examples and cross-crate integration tests. See the individual
//! `turb-*` crates and the `turbulence` core crate for the library API.

pub use turbulence as core;
